#include "fleet/replica.hpp"

#include <algorithm>
#include <filesystem>

#include "common/error.hpp"
#include "fleet/integrity.hpp"

namespace advh::fleet {

namespace {

/// Ballot/staging deadline: a rollout stuck on a dead voter or validator
/// aborts after this many ticks and retries at the next alarm check.
std::uint64_t rollout_deadline(const fleet_config& cfg) {
  return 4 * cfg.request_timeout;
}

}  // namespace

replica::replica(std::size_t index, const fleet_config& cfg,
                 replica_deps deps, sim_net& net, const fault_plan& plan,
                 event_log& log)
    : index_(index),
      cfg_(cfg),
      deps_(std::move(deps)),
      net_(net),
      plan_(plan),
      log_(log) {
  boot(0, /*genesis=*/true);
}

void replica::enqueue(message m) {
  // A crashed replica has no inbox; a stalled one buffers (the messages
  // were delivered — the process just is not scheduling).
  if (up_) inbox_.push_back(std::move(m));
}

std::uint64_t replica::applied_version(std::uint64_t shard) const {
  const auto it = applied_.find(shard);
  return it == applied_.end() ? 0 : it->second;
}

void replica::boot(std::uint64_t tick, bool genesis) {
  clock_ = std::make_unique<serve::virtual_clock>();
  clock_->advance_to(cfg_.tick * static_cast<std::int64_t>(tick));
  monitor_ = deps_.make_monitor();

  // Model mirror: genesis parameters, then overlay every shard checkpoint
  // the shipped-state store has — recovery resumes from the last promoted
  // content, not from scratch.
  models_ = models_of(*deps_.base);
  applied_.clear();
  applied_epoch_.clear();
  corrupt_.clear();
  repair_requested_.clear();
  ban_synced_.clear();
  repairs_in_round_ = 0;
  repairs_served_tick_ = 0;
  repairs_served_count_ = 0;
  for (std::uint64_t s = 0; s < cfg_.class_shards; ++s) {
    applied_[s] = 1;  // genesis content is version 1 by definition
    applied_epoch_[s] = view_epoch(1, 1);
    const std::string latest = shard_latest_path(deps_.dir, s);
    if (!std::filesystem::exists(latest)) continue;
    try {
      core::checkpoint cp = load_shard_checkpoint(latest, s, cfg_, 0, 0);
      merge_shard(models_, cp.det, s, cfg_);
      applied_[s] = cp.meta->content_version;
      applied_epoch_[s] = cp.meta->epoch;
    } catch (const io_error&) {
      // The shipped store HAS content for this shard but it fails
      // verification (checksum mismatch, truncation, framing). Serving
      // genesis parameters here would silently replace promoted content
      // with stale defaults — instead the shard is corrupt-FENCED: it
      // backs no full-confidence verdict, publishes nothing and waits
      // for anti-entropy repair from a peer that still holds the real
      // content. Fail closed, not quietly wrong.
      corrupt_.insert(s);
      ++log_.stats().shards_fenced_corrupt;
      log_.line(tick, "corrupt-fence shard=" + std::to_string(s) +
                          " node=" + std::to_string(node()));
    }
  }
  dets_.clear();
  service_.reset();
  rebuild_detector();

  tracker_ = std::make_unique<track::query_tracker>(*clock_, cfg_.track);
  service_ = std::make_unique<serve::detection_service>(
      *dets_.back(), *monitor_, *clock_, cfg_.serve);
  service_->attach_tracker(*tracker_);
  replay_ban_ledgers(tick);

  const std::size_t classes = deps_.base->num_classes();
  const std::size_t events = deps_.base->config().events.size();
  cells_.assign(classes, std::vector<core::drift_cell>(events));
  reservoir_.assign(classes, {});
  canaries_.assign(classes, {});
  canary_cursor_.assign(classes, 0);
  if (deps_.canary_pool != nullptr) {
    for (const auto& [label, input] : *deps_.canary_pool) {
      if (label < classes) canaries_[label].push_back(&input);
    }
  }

  pending_.clear();
  handoffs_.clear();
  rollout_.reset();
  staged_det_.reset();

  acquired_at_.clear();
  promoted_at_.clear();
  if (genesis) {
    // The fleet starts whole: every replica installs the initial view and
    // is immediately serveable (no prior owner existed, so no acquisition
    // grace applies). After a crash the view stays empty (epoch 0 fences
    // everything) until a controller beacon arrives. Genesis is the first
    // view of election term 1 — the same epoch the genesis leader mints.
    view_.epoch = view_epoch(1, 1);
    view_.live.clear();
    for (std::size_t i = 0; i < cfg_.replicas; ++i) {
      view_.live.push_back(replica_node(i));
    }
    freshest_beacon_ = tick;
  } else {
    view_ = membership_view{};
    freshest_beacon_ = 0;
  }

  up_ = true;
  stalled_ = false;
}

void replica::rebuild_detector() {
  auto copy = models_;
  dets_.push_back(std::make_unique<core::detector>(
      core::detector::from_parts(deps_.base->config(), std::move(copy))));
  if (service_) service_->swap_detector(*dets_.back());
}

void replica::replay_ban_ledgers(std::uint64_t tick) {
  // Every replica's ledger, not just our own: a ban decided anywhere must
  // be enforced here even if its announce raced a crash. Reads are
  // CHECKED: a torn tail (crash mid-append, truncation fault) yields the
  // verified prefix — every fully persisted ban survives — and is
  // counted; only a corrupt header loses a whole ledger, and ban_sync
  // anti-entropy restores those decisions from peers.
  local_bans_.clear();
  known_bans_.clear();
  for (std::size_t i = 0; i < cfg_.replicas; ++i) {
    const std::uint32_t n = replica_node(i);
    const std::string path = ban_ledger_path(deps_.dir, n);
    const ban_ledger_read r = read_ban_ledger_checked(path);
    if (r.torn_tail || r.header_corrupt) {
      ++log_.stats().ledger_torn_tails;
      log_.line(tick, std::string("ledger-torn owner=") + std::to_string(n) +
                          " dropped=" + std::to_string(r.dropped_records) +
                          (r.header_corrupt ? " header=1" : "") +
                          " node=" + std::to_string(node()));
    }
    for (const std::uint64_t c : r.clients) {
      tracker_->force_ban(c);
      known_bans_.insert(c);
    }
    if (n == node()) {
      local_bans_ = r.clients;
      if (r.torn_tail || r.header_corrupt) {
        // Self-heal our own ledger from the recovered prefix so the
        // damage cannot compound across restarts.
        write_ban_ledger(path, local_bans_);
      }
    }
  }
}

void replica::crash(std::uint64_t tick) {
  if (!up_) return;
  up_ = false;
  stalled_ = false;
  inbox_.clear();
  pending_.clear();
  handoffs_.clear();
  rollout_.reset();
  staged_det_.reset();
  service_.reset();
  tracker_.reset();
  dets_.clear();
  monitor_.reset();
  clock_.reset();
  view_ = membership_view{};
  freshest_beacon_ = 0;
  ++log_.stats().crashes;
  log_.line(tick, "crash node=" + std::to_string(node()));
}

void replica::recover(std::uint64_t tick) {
  if (up_) return;
  boot(tick, /*genesis=*/false);
  ++log_.stats().recoveries;
  log_.line(tick, "recover node=" + std::to_string(node()));
}

void replica::stall(std::uint64_t tick) {
  if (!up_ || stalled_) return;
  stalled_ = true;
  ++log_.stats().stalls;
  log_.line(tick, "stall node=" + std::to_string(node()));
}

void replica::unstall(std::uint64_t tick) {
  if (!up_ || !stalled_) return;
  stalled_ = false;
  log_.line(tick, "unstall node=" + std::to_string(node()));
}

std::optional<std::uint32_t> replica::fence_slot(std::uint32_t range,
                                                 std::uint64_t tick) const {
  if (view_.epoch == 0) return std::nullopt;
  // The serving lease and the acquisition grace below share the ONE lease
  // boundary predicate (membership.hpp::lease_held): the holder serves
  // through anchor + lease inclusive, a successor may serve from
  // anchor + lease + 1. Before the predicate existed the two sides used
  // hand-written >=/> comparisons and disagreed about the boundary tick —
  // a one-tick overlap window the boundary regression test now pins shut.
  if (!lease_held(tick, freshest_beacon_, cfg_.lease)) return std::nullopt;
  const auto slot = owner_slot(view_, range, node(), cfg_.replication);
  if (!slot.has_value()) return std::nullopt;
  // Acquisition grace: a range newly covered through a view change stays
  // fenced until the PREVIOUS owner's lease has provably expired. The
  // previous owner may be perfectly healthy (a membership *addition*
  // moves ranges away from live replicas) and can keep serving under its
  // stale view until the change beacon reaches it — but never past its
  // lease, whose clock can only have reached the change tick (acked
  // heartbeats are controller-side ticks, recorded no later than the view
  // change that reassigned the range). Serving strictly after
  // change + lease is therefore disjoint from anything the predecessor
  // can do.
  const auto acquired = acquired_at_.find(range);
  if (acquired != acquired_at_.end() &&
      lease_held(tick, acquired->second, cfg_.lease)) {
    return std::nullopt;
  }
  // Promotion grace: a secondary promoted to primary by a view change
  // keeps serving DEGRADED-only (as if still slot 1) until the deposed
  // primary's lease has run out — it may be healthy and still serving the
  // range full-confidence under its stale view, and two full-confidence
  // servers for one range is exactly the split-brain the audit flags. The
  // grace ends the same tick the audit view flips (both run lease_held
  // off the change tick), so full-confidence serving and the new
  // authoritative view begin together.
  if (*slot == 0) {
    const auto promoted = promoted_at_.find(range);
    if (promoted != promoted_at_.end() &&
        lease_held(tick, promoted->second, cfg_.lease)) {
      return 1;
    }
  }
  return slot;
}

void replica::respond(std::uint64_t tick, std::uint64_t req_id,
                      std::uint64_t client, std::uint32_t range,
                      req_outcome outcome, bool flagged, bool degraded) {
  message r;
  r.kind = msg_kind::response;
  r.src = node();
  r.dst = kRouterNode;
  r.req_id = req_id;
  r.client = client;
  r.range = range;
  r.epoch = view_.epoch;
  r.outcome = outcome;
  r.flagged = flagged;
  r.degraded = degraded;
  net_.send(std::move(r), tick);
}

void replica::persist_ban(std::uint64_t client, std::uint64_t tick) {
  // Durability before effect: the ledger write precedes the response and
  // the announce, so once any query observes this ban, no crash can
  // un-decide it.
  local_bans_.push_back(client);
  known_bans_.insert(client);
  write_ban_ledger(ban_ledger_path(deps_.dir, node()), local_bans_);
  ++log_.stats().bans_decided;
  log_.line(tick, "ban client=" + std::to_string(client) +
                      " node=" + std::to_string(node()));
  for (std::size_t i = 0; i < cfg_.replicas; ++i) {
    if (replica_node(i) == node()) continue;
    message m;
    m.kind = msg_kind::ban_announce;
    m.src = node();
    m.dst = replica_node(i);
    m.client = client;
    net_.send_reliable(std::move(m), tick);
  }
  message m;
  m.kind = msg_kind::ban_announce;
  m.src = node();
  m.dst = kRouterNode;
  m.client = client;
  net_.send_reliable(std::move(m), tick);
}

void replica::handle_request(message& m, std::uint64_t tick) {
  // A normally routed request needs the PRIMARY slot; a speculative
  // re-route accepts any held slot (it exists precisely because the
  // primary is silent) and is tagged degraded when a non-primary slot
  // serves it.
  const auto slot = fence_slot(m.range, tick);
  const bool admissible =
      m.epoch == view_.epoch && slot.has_value() &&
      (m.speculative || *slot == 0);
  if (!admissible) {
    respond(tick, m.req_id, m.client, m.range, req_outcome::abstain_fenced,
            false);
    return;
  }
  serve::submit_result res = service_->submit(
      std::move(m.input), serve::priority::interactive, std::nullopt,
      m.client, /*degraded_confidence=*/m.speculative && *slot != 0);
  if (res.admitted()) {
    pending_[res.id] =
        pending_req{m.req_id, m.client, m.range, m.speculative};
    return;
  }
  if (res.status == serve::admit_status::rejected_banned) {
    if (res.newly_banned) persist_ban(m.client, tick);
    respond(tick, m.req_id, m.client, m.range, req_outcome::rejected_banned,
            false);
    return;
  }
  respond(tick, m.req_id, m.client, m.range, req_outcome::rejected, false);
}

void replica::apply_beacon(const message& m,
                           [[maybe_unused]] std::uint64_t tick) {
  // The lease clock advances on the controller's ACKED-HEARTBEAT tick,
  // monotonically — not on the beacon's send tick. Send-time freshness
  // has an asymmetric-loss hole: a replica whose heartbeats are being
  // lost (and is therefore about to be declared dead) can keep receiving
  // beacons and would stay unfenced while its ranges are reassigned.
  // The acked clock ties the lease to the very signal failure detection
  // watches, so declaration after failure_timeout of silence implies
  // every beacon this replica receives carries an ack that old — fenced
  // past any doubt. Monotone max also means a stale beacon buffered
  // through a stall can never refresh the lease.
  freshest_beacon_ = std::max(freshest_beacon_, m.acked_hb);
  if (m.view.epoch <= view_.epoch) return;

  const membership_view old = view_;
  view_ = m.view;

  // Bans decided while we were stalled or partitioned: announces are
  // reliable, but a view change is the cheap moment to re-sync from the
  // durable ledgers as well. Checked reads: a peer's torn or corrupt
  // ledger yields its verified prefix instead of throwing the whole
  // replica down.
  for (std::size_t i = 0; i < cfg_.replicas; ++i) {
    const std::uint32_t n = replica_node(i);
    if (n == node()) continue;
    const ban_ledger_read lr =
        read_ban_ledger_checked(ban_ledger_path(deps_.dir, n));
    for (const std::uint64_t c : lr.clients) {
      tracker_->force_ban(c);
      known_bans_.insert(c);
    }
  }

  // Record newly-covered ranges (ANY ownership slot — a fresh secondary
  // serves speculative traffic and needs the same grace as a fresh
  // primary) for the fence_slot serving grace. On a recovery boot `old`
  // is the empty epoch-0 view and every covered range counts as newly
  // acquired — the interim owner that served it while we were down is
  // exactly the healthy predecessor the grace waits out.
  for (std::uint32_t r = 0; r < cfg_.ring_ranges; ++r) {
    const auto now_slot = owner_slot(view_, r, node(), cfg_.replication);
    const auto old_slot = old.epoch != 0
                              ? owner_slot(old, r, node(), cfg_.replication)
                              : std::optional<std::uint32_t>{};
    if (now_slot.has_value() && !old_slot.has_value()) {
      acquired_at_[r] = m.send_tick;
    } else if (now_slot.has_value() && *now_slot == 0 &&
               old_slot.has_value() && *old_slot != 0) {
      // Already covered, newly primary: no full fence needed (degraded
      // serving of this range was already legitimate), but full-confidence
      // serving must wait out the deposed primary's lease.
      promoted_at_[r] = m.send_tick;
    }
  }

  // Bounded handoff of every range we owned but lost: one batch per range
  // per tick until the tracker has no clients left in it.
  if (old.epoch == 0) return;  // nothing was owned before the first view
  for (std::uint32_t r = 0; r < cfg_.ring_ranges; ++r) {
    if (range_owner(old, r) != node()) continue;
    const auto owner = range_owner(view_, r);
    if (!owner.has_value() || *owner == node()) continue;
    handoffs_[r] = *owner;
  }
}

void replica::apply_checkpoint(const message& m, std::uint64_t tick) {
  try {
    core::checkpoint cp = load_shard_checkpoint(
        m.path, m.shard, cfg_, applied_epoch_[m.shard], applied_[m.shard]);
    merge_shard(models_, cp.det, m.shard, cfg_);
    applied_[m.shard] = cp.meta->content_version;
    applied_epoch_[m.shard] = cp.meta->epoch;
    rebuild_detector();
    reset_cells_for_shard(m.shard);
    // A verified, version-advancing checkpoint heals a corrupt fence as
    // a side effect: the applied content supersedes whatever was lost.
    corrupt_.erase(m.shard);
    repair_requested_.erase(m.shard);
    ++log_.stats().checkpoints_applied;
    log_.line(tick, "apply shard=" + std::to_string(m.shard) +
                        " v=" + std::to_string(applied_[m.shard]) +
                        " node=" + std::to_string(node()));
  } catch (const io_error&) {
    // Fenced (stale epoch, non-advancing version, foreign shard) or
    // unreadable: rejected whole, nothing was applied.
  }
}

void replica::handle(message& m, std::uint64_t tick) {
  switch (m.kind) {
    case msg_kind::view_beacon:
      apply_beacon(m, tick);
      return;
    case msg_kind::request:
      handle_request(m, tick);
      return;
    case msg_kind::ban_announce:
      tracker_->force_ban(m.client);
      known_bans_.insert(m.client);
      return;
    case msg_kind::digest_exchange:
      handle_digest(m, tick);
      return;
    case msg_kind::repair_request:
      handle_repair_request(m, tick);
      return;
    case msg_kind::repair_announce:
      handle_repair_announce(m, tick);
      return;
    case msg_kind::ban_sync:
      handle_ban_sync(m, tick);
      return;
    case msg_kind::checkpoint_announce:
      apply_checkpoint(m, tick);
      return;
    case msg_kind::handoff_batch: {
      tracker_->import_clients(m.records);
      log_.stats().handoff_clients += m.records.size();
      return;
    }
    case msg_kind::canary_vote_request: {
      // Vote yes when our own canary cells corroborate drift for any of
      // the shard's classes — an independent reservoir's second opinion.
      bool vote = false;
      for (std::size_t cls = 0; cls < cells_.size() && !vote; ++cls) {
        if (shard_of_class(cls, cfg_) != m.shard) continue;
        for (const core::drift_cell& cell : cells_[cls]) {
          if (core::cell_status(cell, cfg_.drift) !=
              core::drift_status::stable) {
            vote = true;
            break;
          }
        }
      }
      message v;
      v.kind = msg_kind::canary_vote;
      v.src = node();
      v.dst = m.src;
      v.shard = m.shard;
      v.ballot = m.ballot;
      v.ok = vote;
      net_.send_reliable(std::move(v), tick);
      return;
    }
    case msg_kind::canary_vote: {
      if (!rollout_ || rollout_->staging || m.ballot != rollout_->ballot) {
        return;
      }
      ++rollout_->votes_total;
      if (m.ok) ++rollout_->votes_yes;
      if (rollout_->votes_yes * 2 > view_.live.size()) {
        stage_refit(tick);
      } else if (rollout_->votes_total >= view_.live.size()) {
        rollout_.reset();  // quorum refused; retry at a later alarm
      }
      return;
    }
    case msg_kind::stage_request: {
      bool ok = true;
      try {
        (void)load_shard_checkpoint(m.path, m.shard, cfg_, 0, 0);
      } catch (const io_error&) {
        ok = false;
      }
      if (plan_.poisoned(m.shard, m.content_version)) ok = false;
      message r;
      r.kind = msg_kind::stage_result;
      r.src = node();
      r.dst = m.src;
      r.shard = m.shard;
      r.content_version = m.content_version;
      r.ok = ok;
      net_.send_reliable(std::move(r), tick);
      return;
    }
    case msg_kind::stage_result: {
      if (rollout_ && rollout_->staging &&
          m.content_version == rollout_->staged_version &&
          m.shard == rollout_->shard) {
        finish_rollout(m.ok, tick);
      }
      return;
    }
    case msg_kind::heartbeat:
    case msg_kind::response:
    case msg_kind::leader_beacon:
    case msg_kind::leader_ack:
    case msg_kind::ballot_request:
    case msg_kind::ballot_grant:
      return;  // not addressed to replicas
  }
}

void replica::canary_step([[maybe_unused]] std::uint64_t tick) {
  const core::detector& det = *dets_.back();
  const auto& events = det.config().events;
  for (std::size_t cls = 0; cls < canaries_.size(); ++cls) {
    if (canaries_[cls].empty()) continue;
    const tensor& x =
        *canaries_[cls][canary_cursor_[cls] % canaries_[cls].size()];
    ++canary_cursor_[cls];
    const hpc::measurement m =
        monitor_->measure(x, events, det.config().repeats);
    const core::verdict v = det.score(cls, m.mean_counts, m.q.available);
    ++log_.stats().canary_probes;
    for (std::size_t e = 0; e < events.size(); ++e) {
      if (!m.q.event_available(e)) continue;
      const auto& model = det.model_for(cls, e);
      if (!model.has_value()) continue;
      core::cell_observe(cells_[cls][e], cfg_.drift, v.nll[e],
                         model->nll_mean, model->nll_stddev);
    }
    if (m.predicted == cls && !v.degraded && !v.abstained) {
      reservoir_[cls].push_back(m.mean_counts);
      while (reservoir_[cls].size() > cfg_.drift.reservoir_capacity) {
        reservoir_[cls].erase(reservoir_[cls].begin());
      }
    }
  }
}

void replica::service_step(std::uint64_t tick) {
  const auto horizon = cfg_.tick * static_cast<std::int64_t>(tick + 1);
  const std::vector<serve::response> rs = service_->run_until(horizon);
  for (const serve::response& r : rs) {
    const auto it = pending_.find(r.id);
    if (it == pending_.end()) continue;  // canary/internal traffic
    const pending_req ctx = it->second;
    pending_.erase(it);
    req_outcome outcome = req_outcome::failed;
    bool flagged = false;
    switch (r.outcome) {
      case serve::response::kind::served:
        outcome = r.v.adversarial_any ? req_outcome::served_flagged
                                      : req_outcome::served_clean;
        flagged = r.v.adversarial_any;
        break;
      case serve::response::kind::shed_deadline:
        outcome = req_outcome::shed;
        break;
      case serve::response::kind::failed_backend:
        outcome = req_outcome::failed;
        break;
    }
    // Re-check the ban at response time: the client's own earlier probes
    // may have crossed the ban threshold while this request sat queued,
    // and a journalled ban must win over an already-computed verdict —
    // once a ban is decided, the client is never served again, not even
    // for requests admitted before the decision.
    if ((outcome == req_outcome::served_clean ||
         outcome == req_outcome::served_flagged) &&
        tracker_->level(ctx.client) == track::escalation::banned) {
      outcome = req_outcome::rejected_banned;
      flagged = false;
    }
    // Integrity fence: a verdict whose predicted class lives on a
    // corrupt-fenced shard never leaves at full confidence — the
    // parameters backing it could not be verified against the durable
    // store. abstain_corrupt tells the router to retry degraded on a
    // peer slot instead of trusting possibly-rotted state.
    const std::uint64_t verdict_shard = shard_of_class(
        static_cast<std::size_t>(r.v.predicted), cfg_);
    if ((outcome == req_outcome::served_clean ||
         outcome == req_outcome::served_flagged) &&
        corrupt_.count(verdict_shard) != 0) {
      outcome = req_outcome::abstain_corrupt;
      flagged = false;
      ++log_.stats().verdicts_suppressed_corrupt;
      service_->note_integrity_suppression();
    }
    // Re-fence at response time: a view change while the request queued
    // means this node may no longer hold a serving slot for the range —
    // abstain instead of leaking a stale verdict. The slot held NOW, not
    // at admission, decides the degraded tag: a speculative request whose
    // server has since been promoted to primary leaves at full
    // confidence.
    bool degraded = false;
    if ((outcome == req_outcome::served_clean ||
         outcome == req_outcome::served_flagged)) {
      const auto slot = fence_slot(ctx.range, tick);
      if (!slot.has_value() || (!ctx.speculative && *slot != 0)) {
        outcome = req_outcome::abstain_fenced;
        flagged = false;
      } else {
        degraded = *slot != 0;
        if (degraded) ++log_.stats().served_secondary;
        if (probe_) probe_(node(), ctx.client, degraded, verdict_shard);
      }
    }
    respond(tick, ctx.req_id, ctx.client, ctx.range, outcome, flagged,
            degraded);
  }
}

void replica::handoff_step(std::uint64_t tick) {
  std::vector<std::uint32_t> done;
  for (const auto& [range, dst] : handoffs_) {
    const std::uint32_t r = range;
    auto batch = tracker_->export_clients(
        cfg_.handoff_batch,
        [&](std::uint64_t client) { return range_of_client(client, cfg_) == r; });
    if (batch.empty()) {
      done.push_back(r);
      continue;
    }
    message m;
    m.kind = msg_kind::handoff_batch;
    m.src = node();
    m.dst = dst;
    m.range = r;
    m.records = std::move(batch);
    net_.send_reliable(std::move(m), tick);
  }
  for (const std::uint32_t r : done) handoffs_.erase(r);
}

void replica::rollout_step(std::uint64_t tick) {
  if (rollout_) {
    if (tick - rollout_->started > rollout_deadline(cfg_)) {
      rollout_.reset();  // voter or validator died; retry on next alarm
      staged_det_.reset();
    }
    return;
  }
  if (tick - last_ballot_tick_ < cfg_.canary_interval) return;

  // Alarm scan over owned shards only: the shard owner is the replica
  // that refits and republishes.
  for (const std::uint64_t s :
       shards_owned(view_, node(), cfg_.class_shards)) {
    // A corrupt-fenced shard must not refit: the reservoirs were filled
    // against parameters we can no longer vouch for.
    if (corrupt_.count(s) != 0) continue;
    bool alarm = false;
    for (std::size_t cls = 0; cls < cells_.size() && !alarm; ++cls) {
      if (shard_of_class(cls, cfg_) != s) continue;
      for (std::size_t e = 0; e < cells_[cls].size(); ++e) {
        if (!dets_.back()->model_for(cls, e).has_value()) continue;
        if (core::cell_status(cells_[cls][e], cfg_.drift) ==
            core::drift_status::alarm) {
          alarm = true;
          break;
        }
      }
    }
    if (!alarm) continue;

    ++log_.stats().drift_alarms;
    last_ballot_tick_ = tick;
    rollout_ = rollout_state{};
    rollout_->shard = s;
    rollout_->ballot = ++ballot_counter_;
    rollout_->votes_yes = 1;  // our own reservoir raised the alarm
    rollout_->votes_total = 1;
    rollout_->started = tick;
    log_.line(tick, "ballot shard=" + std::to_string(s) +
                        " node=" + std::to_string(node()));
    if (rollout_->votes_yes * 2 > view_.live.size()) {
      stage_refit(tick);  // single-replica fleet: own vote is a majority
      return;
    }
    for (const std::uint32_t peer : view_.live) {
      if (peer == node()) continue;
      message m;
      m.kind = msg_kind::canary_vote_request;
      m.src = node();
      m.dst = peer;
      m.shard = s;
      m.ballot = rollout_->ballot;
      m.epoch = view_.epoch;
      net_.send_reliable(std::move(m), tick);
    }
    return;
  }
}

void replica::stage_refit(std::uint64_t tick) {
  const std::uint64_t s = rollout_->shard;
  const std::size_t classes = deps_.base->num_classes();
  const std::size_t events = deps_.base->config().events.size();

  core::benign_template tpl(classes, events);
  bool enough = true;
  for (std::size_t cls = 0; cls < classes; ++cls) {
    if (shard_of_class(cls, cfg_) != s) continue;
    if (!dets_.back()->model_for(cls, 0).has_value() &&
        !dets_.back()->model_for(cls, events - 1).has_value()) {
      continue;  // class was never modeled; nothing to recalibrate
    }
    if (reservoir_[cls].size() < cfg_.drift.min_refit_rows) {
      enough = false;
      break;
    }
    for (const std::vector<double>& row : reservoir_[cls]) {
      tpl.add_row(cls, row);
    }
  }
  if (!enough) {
    rollout_.reset();  // not enough canary evidence yet; keep collecting
    return;
  }

  // Thread-invariant refit (detector::fit's per-cell seeded EM), so a
  // rollout's parameters are bitwise identical at any thread count.
  core::detector refit =
      core::detector::fit(tpl, deps_.base->config(), cfg_.serve.threads);
  staged_det_ = std::make_unique<core::detector>(std::move(refit));

  rollout_->staged_version = applied_[s] + 1;
  core::checkpoint_meta meta;
  meta.epoch = view_.epoch;
  meta.shard_index = s;
  meta.shard_count = cfg_.class_shards;
  meta.content_version = rollout_->staged_version;
  meta.rollback = false;
  rollout_->staged_path =
      stage_shard_checkpoint(*staged_det_, cfg_, deps_.dir, s, meta);
  rollout_->staging = true;
  log_.line(tick, "stage shard=" + std::to_string(s) +
                      " v=" + std::to_string(rollout_->staged_version));

  // Canary validation on an independent replica when one exists.
  std::uint32_t validator = node();
  for (const std::uint32_t peer : view_.live) {
    if (peer != node()) {
      validator = peer;
      break;
    }
  }
  if (validator == node()) {
    bool ok = true;
    try {
      (void)load_shard_checkpoint(rollout_->staged_path, s, cfg_, 0, 0);
    } catch (const io_error&) {
      ok = false;
    }
    if (plan_.poisoned(s, rollout_->staged_version)) ok = false;
    finish_rollout(ok, tick);
    return;
  }
  message m;
  m.kind = msg_kind::stage_request;
  m.src = node();
  m.dst = validator;
  m.shard = s;
  m.content_version = rollout_->staged_version;
  m.path = rollout_->staged_path;
  m.epoch = view_.epoch;
  net_.send_reliable(std::move(m), tick);
}

void replica::finish_rollout(bool ok, std::uint64_t tick) {
  const std::uint64_t s = rollout_->shard;
  core::checkpoint_meta meta;
  meta.shard_index = s;
  meta.shard_count = cfg_.class_shards;
  meta.epoch = view_.epoch;

  std::string path;
  if (ok) {
    // Promote: the staged parameters become this shard's content.
    merge_shard(models_, *staged_det_, s, cfg_);
    meta.content_version = rollout_->staged_version;
    meta.rollback = false;
    applied_[s] = meta.content_version;
    applied_epoch_[s] = view_.epoch;
    rebuild_detector();
    path = save_shard_checkpoint(*dets_.back(), cfg_, deps_.dir, s, meta);
    ++log_.stats().rollouts;
  } else {
    // Roll back: republish the LAST GOOD parameters under a higher
    // content version, flagged as a rollback, so version monotonicity
    // holds everywhere and the poisoned staged file is permanently
    // superseded.
    meta.content_version = rollout_->staged_version + 1;
    meta.rollback = true;
    applied_[s] = meta.content_version;
    applied_epoch_[s] = view_.epoch;
    path = save_shard_checkpoint(*dets_.back(), cfg_, deps_.dir, s, meta);
    ++log_.stats().rollbacks;
  }
  ++log_.stats().checkpoints_published;
  log_.line(tick, "promote shard=" + std::to_string(s) +
                      " v=" + std::to_string(meta.content_version) +
                      " rollback=" + (meta.rollback ? "1" : "0"));
  for (std::size_t i = 0; i < cfg_.replicas; ++i) {
    if (replica_node(i) == node()) continue;
    message m;
    m.kind = msg_kind::checkpoint_announce;
    m.src = node();
    m.dst = replica_node(i);
    m.shard = s;
    m.content_version = meta.content_version;
    m.epoch = meta.epoch;
    m.path = path;
    net_.send_reliable(std::move(m), tick);
  }
  reset_cells_for_shard(s);
  rollout_.reset();
  staged_det_.reset();
}

void replica::publish_checkpoints([[maybe_unused]] std::uint64_t tick) {
  // Durability refresh of owned shards at their current applied version:
  // no announce (receivers would fence a non-advancing version), just a
  // rewrite of the shipped files so a fresh store recovers them.
  for (const std::uint64_t s :
       shards_owned(view_, node(), cfg_.class_shards)) {
    // Never republish a corrupt-fenced shard: our in-memory content for
    // it is genesis fallback, and writing it out would launder stale
    // defaults into a checksum-valid "latest" file.
    if (corrupt_.count(s) != 0) continue;
    core::checkpoint_meta meta;
    meta.shard_index = s;
    meta.shard_count = cfg_.class_shards;
    meta.epoch = applied_epoch_[s];
    meta.content_version = applied_[s];
    meta.rollback = false;
    save_shard_checkpoint(*dets_.back(), cfg_, deps_.dir, s, meta);
    ++log_.stats().checkpoints_published;
  }
}

std::uint32_t replica::content_digest(std::uint64_t shard) const {
  return shard_content_digest(models_, shard, cfg_);
}

bool replica::owns_shard_slot(std::uint64_t shard) const {
  for (std::uint32_t k = 0; k < cfg_.replication; ++k) {
    const auto owner = shard_owner_k(view_, shard, k);
    if (owner.has_value() && *owner == node()) return true;
  }
  return false;
}

void replica::scrub_step(std::uint64_t tick) {
  ++log_.stats().scrub_rounds;
  repairs_in_round_ = 0;

  // 1. Self-audit: re-verify the on-disk latest file of every shard we
  // own. Our in-memory content is the applied truth — if the file rotted
  // underneath us, republish it from memory. Fenced shards are skipped:
  // for those, memory is genesis fallback, not truth.
  for (const std::uint64_t s :
       shards_owned(view_, node(), cfg_.class_shards)) {
    if (corrupt_.count(s) != 0) continue;
    const std::string latest = shard_latest_path(deps_.dir, s);
    if (!std::filesystem::exists(latest)) continue;
    if (verify_checkpoint_file(latest)) continue;
    core::checkpoint_meta meta;
    meta.shard_index = s;
    meta.shard_count = cfg_.class_shards;
    meta.epoch = applied_epoch_[s];
    meta.content_version = applied_[s];
    meta.rollback = false;
    save_shard_checkpoint(*dets_.back(), cfg_, deps_.dir, s, meta);
    ++log_.stats().repairs_local;
    log_.line(tick, "heal shard=" + std::to_string(s) +
                        " node=" + std::to_string(node()));
  }

  // 2. Compact range digest over every shard plus the ban set. The root
  // is journalled — byte-identical journals across thread counts are the
  // proof that digest computation is deterministic.
  std::vector<shard_digest_entry> entries;
  std::vector<std::uint32_t> leaves;
  entries.reserve(cfg_.class_shards);
  leaves.reserve(cfg_.class_shards + 1);
  for (std::uint64_t s = 0; s < cfg_.class_shards; ++s) {
    shard_digest_entry e;
    e.shard = s;
    e.version = applied_[s];
    e.epoch = applied_epoch_[s];
    e.crc = shard_content_digest(models_, s, cfg_);
    e.fenced = corrupt_.count(s) != 0;
    leaves.push_back(e.crc);
    entries.push_back(e);
  }
  const std::uint32_t ban_crc = ban_set_digest(known_bans_);
  leaves.push_back(ban_crc);
  log_.line(tick, "scrub node=" + std::to_string(node()) +
                      " root=" + std::to_string(digest_root(leaves)));

  // 3. Exchange digests with every live peer. Best-effort sends, like
  // gossip: a lost digest only delays the next repair opportunity by one
  // scrub period, so there is no retry storm to bound.
  if (plan_.digest_blackout_at(tick)) {
    ++log_.stats().digests_suppressed;
    return;
  }
  for (const std::uint32_t peer : view_.live) {
    if (peer == node()) continue;
    message m;
    m.kind = msg_kind::digest_exchange;
    m.src = node();
    m.dst = peer;
    m.epoch = view_.epoch;
    m.digests = entries;
    m.ban_crc = ban_crc;
    m.ban_count = known_bans_.size();
    net_.send(std::move(m), tick);
    ++log_.stats().digests_sent;
  }
}

void replica::handle_digest(const message& m, std::uint64_t tick) {
  for (const shard_digest_entry& e : m.digests) {
    if (e.shard >= cfg_.class_shards) continue;
    const std::uint64_t s = e.shard;
    const bool we_fenced = corrupt_.count(s) != 0;
    const std::uint64_t our_v = applied_[s];
    const std::uint64_t our_e = applied_epoch_[s];
    // A fenced peer advertises nothing worth pulling; our own divergence
    // classes:
    //   * peer strictly ahead in (epoch, version) — we missed content;
    //   * we are fenced and the peer holds content at or above our
    //     (genesis) generation — the repair that unfences us;
    //   * same (epoch, version) but different bytes — silent divergence
    //     (a stale resurrection passed its checksum); the lower node id
    //     is the deterministic canonical side and the higher one pulls.
    const bool peer_ahead =
        !e.fenced &&
        (e.epoch > our_e || (e.epoch == our_e && e.version > our_v));
    const bool fenced_pull =
        we_fenced && !e.fenced &&
        (e.epoch > our_e || (e.epoch == our_e && e.version >= our_v));
    const bool same_gen_diverged =
        !e.fenced && !we_fenced && e.epoch == our_e && e.version == our_v &&
        e.crc != shard_content_digest(models_, s, cfg_);
    if (!peer_ahead && !fenced_pull && !same_gen_diverged) continue;
    ++log_.stats().digest_mismatches;
    const bool pull =
        peer_ahead || fenced_pull || (same_gen_diverged && m.src < node());
    if (!pull) continue;
    // Pull only from an ownership-slot holder of the shard (mirror of
    // the server-side authority check): a bystander's digest proves
    // divergence but its content has no authority, and requesting from
    // it would just burn this period's repair budget on a refusal. At
    // replication 1 the sole holder is the corrupted node itself, so no
    // request is ever sent — the shard fails closed.
    bool src_holder = false;
    for (std::uint32_t k = 0; k < cfg_.replication && !src_holder; ++k) {
      const auto owner = shard_owner_k(view_, s, k);
      src_holder = owner.has_value() && *owner == m.src;
    }
    if (!src_holder) continue;
    // Rate bound: at most repair_batch pulls per scrub period, and no
    // duplicate request for a shard already in flight.
    const auto it = repair_requested_.find(s);
    if (it != repair_requested_.end() &&
        tick < it->second + cfg_.scrub_period) {
      continue;
    }
    if (repairs_in_round_ >= cfg_.repair_batch) continue;
    ++repairs_in_round_;
    repair_requested_[s] = tick;
    message req;
    req.kind = msg_kind::repair_request;
    req.src = node();
    req.dst = m.src;
    req.shard = s;
    req.epoch = view_.epoch;
    net_.send_reliable(std::move(req), tick);
    ++log_.stats().repairs_requested;
    log_.line(tick, "repair-request shard=" + std::to_string(s) +
                        " from=" + std::to_string(m.src) +
                        " node=" + std::to_string(node()));
  }

  // Ban anti-entropy: when the peer's ban surface differs from ours,
  // push them our full set (they run the same rule against our digest,
  // so both sides converge to the union). Rate-bounded per peer.
  if (m.ban_count != known_bans_.size() ||
      m.ban_crc != ban_set_digest(known_bans_)) {
    const auto it = ban_synced_.find(m.src);
    if (!known_bans_.empty() &&
        (it == ban_synced_.end() ||
         tick >= it->second + cfg_.scrub_period)) {
      ban_synced_[m.src] = tick;
      message bs;
      bs.kind = msg_kind::ban_sync;
      bs.src = node();
      bs.dst = m.src;
      bs.bans.assign(known_bans_.begin(), known_bans_.end());
      net_.send_reliable(std::move(bs), tick);
    }
  }
}

void replica::handle_repair_request(const message& m, std::uint64_t tick) {
  const std::uint64_t s = m.shard;
  if (s >= cfg_.class_shards) return;
  // Authority: only a current ownership-slot holder of the shard, and
  // never a fenced one, may act as a repair source. At replication 1 a
  // corrupted sole owner therefore has no authorized peer — the shard
  // FAILS CLOSED instead of resurrecting from a bystander's copy whose
  // lineage nobody vouches for.
  if (corrupt_.count(s) != 0 || !owns_shard_slot(s)) return;
  if (repairs_served_tick_ != tick) {
    repairs_served_tick_ = tick;
    repairs_served_count_ = 0;
  }
  if (repairs_served_count_ >= cfg_.repair_batch) return;
  ++repairs_served_count_;
  // Republish our applied content (also heals the shared latest file if
  // it was the corrupt artifact) and hand the requester the path.
  core::checkpoint_meta meta;
  meta.shard_index = s;
  meta.shard_count = cfg_.class_shards;
  meta.epoch = applied_epoch_[s];
  meta.content_version = applied_[s];
  meta.rollback = false;
  const std::string path =
      save_shard_checkpoint(*dets_.back(), cfg_, deps_.dir, s, meta);
  message r;
  r.kind = msg_kind::repair_announce;
  r.src = node();
  r.dst = m.src;
  r.shard = s;
  r.content_version = meta.content_version;
  r.epoch = meta.epoch;
  r.path = path;
  net_.send_reliable(std::move(r), tick);
  ++log_.stats().repairs_served;
  log_.line(tick, "repair-serve shard=" + std::to_string(s) +
                      " to=" + std::to_string(m.src) +
                      " node=" + std::to_string(node()));
}

void replica::handle_repair_announce(const message& m, std::uint64_t tick) {
  const std::uint64_t s = m.shard;
  if (s >= cfg_.class_shards) return;
  const bool was_fenced = corrupt_.count(s) != 0;
  try {
    // Epoch/version floors of 0 because repair may legitimately restore
    // the SAME (epoch, version) we already hold (divergence repair) —
    // the explicit guard below enforces the real monotonicity: never
    // accept content strictly below our applied (epoch, version), so a
    // deposed primary can never repair us backwards.
    core::checkpoint cp = load_shard_checkpoint(m.path, s, cfg_, 0, 0);
    const bool backwards =
        cp.meta->epoch < applied_epoch_[s] ||
        (cp.meta->epoch == applied_epoch_[s] &&
         cp.meta->content_version < applied_[s]);
    if (backwards && !was_fenced) return;
    merge_shard(models_, cp.det, s, cfg_);
    applied_[s] = cp.meta->content_version;
    applied_epoch_[s] = cp.meta->epoch;
    rebuild_detector();
    reset_cells_for_shard(s);
    corrupt_.erase(s);
    repair_requested_.erase(s);
    ++log_.stats().repairs_completed;
    log_.line(tick, std::string("repair shard=") + std::to_string(s) +
                        " v=" + std::to_string(applied_[s]) +
                        " node=" + std::to_string(node()) +
                        (was_fenced ? " unfenced=1" : ""));
  } catch (const io_error&) {
    // The repair artifact itself failed verification: stay fenced and
    // let a later scrub round retry against a (possibly different) peer.
    repair_requested_.erase(s);
  }
}

void replica::handle_ban_sync(const message& m, std::uint64_t tick) {
  bool added = false;
  for (const std::uint64_t c : m.bans) {
    if (!known_bans_.insert(c).second) continue;
    tracker_->force_ban(c);
    local_bans_.push_back(c);
    added = true;
    ++log_.stats().bans_synced;
  }
  if (!added) return;
  // Make the synced decisions durable HERE too: after this write, even
  // if every other ledger is lost, these bans replay from ours.
  write_ban_ledger(ban_ledger_path(deps_.dir, node()), local_bans_);
  log_.line(tick, "ban-sync node=" + std::to_string(node()) +
                      " from=" + std::to_string(m.src));
}

void replica::reset_cells_for_shard(std::uint64_t shard) {
  // The shard's parameters changed: sequential statistics accumulated
  // against the old models are meaningless (and would instantly re-alarm).
  for (std::size_t cls = 0; cls < cells_.size(); ++cls) {
    if (shard_of_class(cls, cfg_) != shard) continue;
    for (core::drift_cell& cell : cells_[cls]) cell = core::drift_cell{};
  }
}

void replica::on_tick(std::uint64_t tick) {
  if (!up_ || stalled_) return;
  clock_->advance_to(cfg_.tick * static_cast<std::int64_t>(tick));

  std::vector<message> msgs;
  msgs.swap(inbox_);
  for (message& m : msgs) handle(m, tick);

  if (tick % cfg_.hb_interval == 0) {
    // Heartbeat the WHOLE controller group, not just the leader: every
    // standby keeps a warm failure-detection table, so a freshly elected
    // leader declares deaths from real observations instead of a blank
    // slate (which would read as "everyone just heartbeat" and stall
    // failover by a full failure_timeout).
    for (std::size_t j = 0; j < cfg_.controllers; ++j) {
      message hb;
      hb.kind = msg_kind::heartbeat;
      hb.src = node();
      hb.dst = controller_node(j);
      net_.send(std::move(hb), tick);
    }
  }
  if (tick > 0 && tick % cfg_.canary_interval == 0) canary_step(tick);
  service_step(tick);
  handoff_step(tick);
  rollout_step(tick);
  if (tick > 0 && tick % cfg_.checkpoint_interval == 0) {
    publish_checkpoints(tick);
  }
  if (tick > 0 && tick % cfg_.scrub_period == 0) scrub_step(tick);
}

}  // namespace advh::fleet
