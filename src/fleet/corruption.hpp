// Applier for seeded disk-corruption faults.
//
// The fault plan schedules corruption_events as data (fleet/fault_plan);
// this module is the hand that actually damages the bytes, at the very
// start of the sim tick, before any node acts. All damage is derived
// deterministically from the event's own seed — which bit flips, where a
// truncation cuts — so a chaos run's on-disk history is as reproducible
// as its journal. Three kinds:
//
//   * bit_flip — one seeded bit of the target file inverts (a rotted
//     sector). Caught by the checksum layer on the next read.
//   * truncate — the file is cut at a seeded offset (a torn write that
//     landed after publication, below the rename's atomicity). Caught as
//     a typed truncation / checksum error.
//   * stale_resurrect — the storage layer serves back an OLD, checksum-
//     VALID generation: for a shard file the lowest versioned snapshot
//     overwrites the latest alias; for a ledger the first half of its
//     records are rewritten with valid framing. Checksums cannot catch
//     this one — only the anti-entropy version digests do.
//
// A corruption against a file that does not exist yet is a no-op (the
// plan fires blind; nothing to damage is nothing to observe).
#pragma once

#include <cstdint>
#include <string>

#include "fleet/config.hpp"
#include "fleet/events.hpp"
#include "fleet/fault_plan.hpp"

namespace advh::fleet {

/// Applies `e` against the shared checkpoint/ledger store at `dir`.
/// Returns true when a file was actually damaged (journalled and counted
/// into corrupt_faults); false when the target did not exist.
bool apply_corruption(const corruption_event& e, const fleet_config& cfg,
                      const std::string& dir, event_log& log);

}  // namespace advh::fleet
