#include "fleet/membership.hpp"

#include <algorithm>

namespace advh::fleet {

std::optional<std::uint32_t> shard_owner(const membership_view& view,
                                         std::uint64_t shard) {
  if (view.live.empty()) return std::nullopt;
  return view.live[shard % view.live.size()];
}

std::optional<std::uint32_t> range_owner(const membership_view& view,
                                         std::uint32_t range) {
  if (view.live.empty()) return std::nullopt;
  return view.live[range % view.live.size()];
}

std::vector<std::uint32_t> ranges_owned(const membership_view& view,
                                        std::uint32_t node,
                                        std::uint32_t ring_ranges) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t r = 0; r < ring_ranges; ++r) {
    if (range_owner(view, r) == node) out.push_back(r);
  }
  return out;
}

std::vector<std::uint64_t> shards_owned(const membership_view& view,
                                        std::uint32_t node,
                                        std::uint64_t class_shards) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t s = 0; s < class_shards; ++s) {
    if (shard_owner(view, s) == node) out.push_back(s);
  }
  return out;
}

controller::controller(const fleet_config& cfg)
    : cfg_(cfg), last_heartbeat_(cfg.replicas) {
  // Initial view: every replica is presumed live at epoch 1 — the fleet
  // starts whole and failure detection prunes from there. Heartbeat
  // bookkeeping starts at tick 0 so a replica crashed at boot is still
  // detected after failure_timeout.
  view_.epoch = 1;
  for (std::size_t i = 0; i < cfg_.replicas; ++i) {
    view_.live.push_back(replica_node(i));
    last_heartbeat_[i] = 0;
  }
}

void controller::on_heartbeat(std::uint32_t node, std::uint64_t tick) {
  const std::size_t idx = node - 2;
  if (idx >= last_heartbeat_.size()) return;
  if (!last_heartbeat_[idx].has_value() ||
      *last_heartbeat_[idx] < tick) {
    last_heartbeat_[idx] = tick;
  }
}

std::uint64_t controller::acked_heartbeat(std::uint32_t node) const {
  const std::size_t idx = node - 2;
  if (idx >= last_heartbeat_.size()) return 0;
  return last_heartbeat_[idx].value_or(0);
}

std::optional<membership_view> controller::step(std::uint64_t tick) {
  // Two-phase view change (lease transfer). A membership change is
  // ANNOUNCED immediately — replicas fence out of lost ranges and start
  // acquisition graces off the announced view — but the controller's
  // AUTHORITATIVE view (what the split-brain probe audits, i.e. who is
  // allowed to produce verdicts) flips only `lease + 1` ticks later.
  // Rationale: a perfectly healthy replica that loses a range to a
  // membership *addition* keeps serving it under its stale view until it
  // learns of the change. It cannot be forced to learn in bounded time,
  // but it provably cannot serve past its lease: every lease refresh it
  // can obtain after the announcement either carries the announced view
  // (it stops serving the lost range) or is an older beacon whose acked
  // heartbeat predates the announcement (its lease expires within
  // `lease` ticks). Waiting out one full lease before the flip therefore
  // makes old-owner serving and new-owner serving disjoint in time.
  if (pending_.has_value() && tick >= activate_at_) {
    view_ = *pending_;
    pending_.reset();
  }

  std::vector<std::uint32_t> live;
  for (std::size_t i = 0; i < cfg_.replicas; ++i) {
    if (!last_heartbeat_[i].has_value()) continue;
    if (tick - *last_heartbeat_[i] >= cfg_.failure_timeout) {
      // Dead until a fresh heartbeat readmits it.
      last_heartbeat_[i] = std::nullopt;
      continue;
    }
    live.push_back(replica_node(i));
  }
  std::sort(live.begin(), live.end());

  const membership_view& target = pending_.has_value() ? *pending_ : view_;
  if (live == target.live) return std::nullopt;
  membership_view next;
  next.epoch = target.epoch + 1;
  next.live = std::move(live);
  pending_ = std::move(next);
  // Further churn inside the window restarts the clock: the authoritative
  // view only moves once the announced membership has been stable for a
  // full lease.
  activate_at_ = tick + cfg_.lease + 1;
  return *pending_;
}

const membership_view& controller::announced() const noexcept {
  return pending_.has_value() ? *pending_ : view_;
}

}  // namespace advh::fleet
