#include "fleet/membership.hpp"

#include <algorithm>
#include <fstream>

#include "common/fs.hpp"
#include "fleet/events.hpp"
#include "fleet/net.hpp"

namespace advh::fleet {

namespace {

std::string live_list(const membership_view& v) {
  std::string out;
  for (std::size_t i = 0; i < v.live.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(v.live[i]);
  }
  return out.empty() ? "-" : out;
}

std::string term_path(const std::string& dir, std::size_t index) {
  return dir + "/ctl" + std::to_string(index) + ".term";
}

}  // namespace

const char* to_string(ctl_role r) noexcept {
  switch (r) {
    case ctl_role::standby:
      return "standby";
    case ctl_role::candidate:
      return "candidate";
    case ctl_role::leader:
      return "leader";
  }
  return "?";
}

std::optional<std::uint32_t> range_owner_k(const membership_view& view,
                                           std::uint32_t range,
                                           std::uint32_t k) {
  if (k >= view.live.size()) return std::nullopt;
  const std::size_t n = view.live.size();
  return view.live[(range % n + k) % n];
}

std::optional<std::uint32_t> shard_owner_k(const membership_view& view,
                                           std::uint64_t shard,
                                           std::uint32_t k) {
  if (k >= view.live.size()) return std::nullopt;
  const std::size_t n = view.live.size();
  return view.live[(shard % n + k) % n];
}

std::optional<std::uint32_t> shard_owner(const membership_view& view,
                                         std::uint64_t shard) {
  return shard_owner_k(view, shard, 0);
}

std::optional<std::uint32_t> range_owner(const membership_view& view,
                                         std::uint32_t range) {
  return range_owner_k(view, range, 0);
}

std::optional<std::uint32_t> owner_slot(const membership_view& view,
                                        std::uint32_t range,
                                        std::uint32_t node,
                                        std::uint32_t replication) {
  for (std::uint32_t k = 0; k < replication; ++k) {
    const auto owner = range_owner_k(view, range, k);
    if (!owner.has_value()) break;
    if (*owner == node) return k;
  }
  return std::nullopt;
}

std::vector<std::uint32_t> ranges_owned(const membership_view& view,
                                        std::uint32_t node,
                                        std::uint32_t ring_ranges) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t r = 0; r < ring_ranges; ++r) {
    if (range_owner(view, r) == node) out.push_back(r);
  }
  return out;
}

std::vector<std::uint64_t> shards_owned(const membership_view& view,
                                        std::uint32_t node,
                                        std::uint64_t class_shards) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t s = 0; s < class_shards; ++s) {
    if (shard_owner(view, s) == node) out.push_back(s);
  }
  return out;
}

controller::controller(std::size_t index, const fleet_config& cfg,
                       std::string dir, sim_net& net, event_log& log)
    : index_(index), cfg_(cfg), dir_(std::move(dir)), net_(net), log_(log) {
  boot(0, /*genesis=*/true);
}

void controller::bump_voted_term(std::uint64_t term) {
  if (term <= voted_term_) return;
  // Write-before-effect: the durable term record moves first, so a
  // crash-recovered controller can never re-grant (or re-mint epochs
  // for) a term the group already burned.
  atomic_write_file(term_path(dir_, index_), std::to_string(term));
  voted_term_ = term;
}

void controller::boot(std::uint64_t tick, bool genesis) {
  inbox_.clear();
  role_ = ctl_role::standby;
  term_ = 0;
  voted_term_ = 0;
  if (genesis) {
    // A genesis boot is a NEW fleet: reset the durable term record so a
    // reused store directory cannot leak a previous run's terms in.
    atomic_write_file(term_path(dir_, index_), "1");
    voted_term_ = 1;  // everyone is committed to controller 0's term 1
  } else if (std::ifstream in{term_path(dir_, index_)}) {
    std::uint64_t t = 0;
    if (in >> t) voted_term_ = t;
  }
  // A freshly booted controller waits a full failure timeout before it
  // will candidate or grant ballots: long enough to hear any live leader.
  last_leader_signal_ = tick;
  ack_tick_.assign(cfg_.controllers, std::nullopt);
  grants_ = 0;
  candidacy_started_ = 0;
  act_from_ = tick;
  view_ = membership_view{};
  pending_.clear();
  view_seq_ = 0;
  // Every replica is presumed live at boot; failure detection prunes from
  // there (a replica silent since before this boot is declared dead after
  // one full failure_timeout).
  last_heartbeat_.assign(cfg_.replicas, tick);

  if (genesis && index_ == 0) {
    // The deterministic genesis convention every node shares: controller
    // 0 leads term 1 from tick 0 with the whole fleet live, and the rest
    // of the group has implicitly acked it.
    role_ = ctl_role::leader;
    term_ = 1;
    view_seq_ = 1;
    view_.epoch = view_epoch(1, 1);
    for (std::size_t i = 0; i < cfg_.replicas; ++i) {
      view_.live.push_back(replica_node(i));
    }
    ack_tick_.assign(cfg_.controllers, tick);
  }

  up_ = true;
  stalled_ = false;
}

void controller::crash(std::uint64_t tick) {
  if (!up_) return;
  up_ = false;
  stalled_ = false;
  inbox_.clear();
  ++log_.stats().crashes;
  log_.line(tick, "ctl-crash node=" + std::to_string(node()));
}

void controller::recover(std::uint64_t tick) {
  if (up_) return;
  boot(tick, /*genesis=*/false);
  ++log_.stats().recoveries;
  log_.line(tick, "ctl-recover node=" + std::to_string(node()));
}

void controller::stall(std::uint64_t tick) {
  if (!up_ || stalled_) return;
  stalled_ = true;
  ++log_.stats().stalls;
  log_.line(tick, "ctl-stall node=" + std::to_string(node()));
}

void controller::unstall(std::uint64_t tick) {
  if (!up_ || !stalled_) return;
  stalled_ = false;
  log_.line(tick, "ctl-unstall node=" + std::to_string(node()));
}

void controller::enqueue(message m) {
  if (up_) inbox_.push_back(std::move(m));
}

void controller::on_heartbeat(std::uint32_t from, std::uint64_t tick) {
  if (from < 2) return;
  const std::size_t idx = from - 2;
  if (idx >= last_heartbeat_.size()) return;
  if (!last_heartbeat_[idx].has_value() || *last_heartbeat_[idx] < tick) {
    last_heartbeat_[idx] = tick;
  }
}

std::uint64_t controller::acked_heartbeat(std::uint32_t from) const {
  if (from < 2) return 0;
  const std::size_t idx = from - 2;
  if (idx >= last_heartbeat_.size()) return 0;
  return last_heartbeat_[idx].value_or(0);
}

bool controller::leading(std::uint64_t tick) const {
  if (!up_ || role_ != ctl_role::leader) return false;
  std::size_t fresh = 0;
  for (const auto& ack : ack_tick_) {
    if (ack.has_value() && lease_held(tick, *ack, cfg_.ctl_lease)) ++fresh;
  }
  return fresh * 2 > cfg_.controllers;
}

bool controller::acting(std::uint64_t tick) const {
  return leading(tick) && tick >= act_from_;
}

void controller::step_down(std::uint64_t term, std::uint64_t tick) {
  role_ = ctl_role::standby;
  bump_voted_term(term);
  last_leader_signal_ = tick;
  // Announced-but-unactivated views die with the regime: only an
  // acting leader may move the authoritative view, and this controller
  // will never act for its old term again.
  pending_.clear();
  log_.line(tick, "ctl-stepdown node=" + std::to_string(node()) +
                      " term=" + std::to_string(term));
}

void controller::start_candidacy(std::uint64_t tick) {
  role_ = ctl_role::candidate;
  term_ = voted_term_ + 1;
  bump_voted_term(term_);  // vote for self, durably, before asking anyone
  grants_ = 1;
  candidacy_started_ = tick;
  log_.line(tick, "ctl-candidate node=" + std::to_string(node()) +
                      " term=" + std::to_string(term_));
  if (grants_ * 2 > cfg_.controllers) {
    become_leader(tick);
    return;
  }
  for (std::size_t j = 0; j < cfg_.controllers; ++j) {
    if (j == index_) continue;
    message m;
    m.kind = msg_kind::ballot_request;
    m.src = node();
    m.dst = controller_node(j);
    m.ballot = term_;
    net_.send_reliable(std::move(m), tick);
  }
}

void controller::become_leader(std::uint64_t tick) {
  role_ = ctl_role::leader;
  // Takeover fence: every ballot in our quorum came from a voter that
  // stopped acking the old term no later than now, so the old leader's
  // lease is starved within ctl_lease ticks and its last in-flight view
  // beacon lands within max_delay more. Acting strictly after both means
  // the group's first new word cannot overlap the old regime's last.
  act_from_ = tick + cfg_.ctl_lease + cfg_.max_delay + 1;
  ack_tick_.assign(cfg_.controllers, std::nullopt);
  ack_tick_[index_] = tick;
  view_ = membership_view{};
  pending_.clear();
  view_seq_ = 0;
  ++log_.stats().elections;
  log_.line(tick, "ctl-leader node=" + std::to_string(node()) +
                      " term=" + std::to_string(term_));
}

void controller::handle(const message& m, std::uint64_t tick) {
  switch (m.kind) {
    case msg_kind::heartbeat:
      on_heartbeat(m.src, m.send_tick);
      return;
    case msg_kind::leader_beacon: {
      const std::uint64_t t = m.ballot;
      // A stale leader's beacon is ignored entirely: withholding the ack
      // is what starves a deposed leader's lease.
      if (t < voted_term_) return;
      bump_voted_term(t);
      if (role_ == ctl_role::leader && t > term_) {
        step_down(t, tick);
      } else if (role_ == ctl_role::candidate && t >= term_) {
        role_ = ctl_role::standby;
      }
      last_leader_signal_ = tick;
      message a;
      a.kind = msg_kind::leader_ack;
      a.src = node();
      a.dst = m.src;
      a.ballot = t;
      net_.send(std::move(a), tick);
      return;
    }
    case msg_kind::leader_ack: {
      if (role_ != ctl_role::leader || m.ballot != term_) return;
      if (!is_controller_node(m.src)) return;
      const std::size_t j = m.src - kControllerBase;
      if (j >= ack_tick_.size()) return;
      if (!ack_tick_[j].has_value() || *ack_tick_[j] < tick) {
        ack_tick_[j] = tick;
      }
      return;
    }
    case msg_kind::ballot_request: {
      const std::uint64_t t = m.ballot;
      // Grant at most once per term, and only while we have heard no
      // live leader for a full failure timeout ourselves — an impatient
      // standby can never depose a leader its peers still hear. A leader
      // holding its lease likewise refuses (it IS the signal).
      const bool silent =
          role_ != ctl_role::leader &&
          tick - last_leader_signal_ > cfg_.ctl_failure_timeout;
      const bool grant = t > voted_term_ && silent;
      if (grant) {
        bump_voted_term(t);
        if (role_ == ctl_role::candidate) role_ = ctl_role::standby;
        // Somebody is being elected: restart our own stagger so we do
        // not pile a competing candidacy on top of theirs.
        last_leader_signal_ = tick;
      }
      message g;
      g.kind = msg_kind::ballot_grant;
      g.src = node();
      g.dst = m.src;
      g.ballot = t;
      g.ok = grant;
      net_.send_reliable(std::move(g), tick);
      return;
    }
    case msg_kind::ballot_grant: {
      if (role_ != ctl_role::candidate || m.ballot != term_ || !m.ok) return;
      ++grants_;
      if (grants_ * 2 > cfg_.controllers) become_leader(tick);
      return;
    }
    default:
      return;  // not addressed to controllers
  }
}

void controller::membership_step(std::uint64_t tick) {
  // Two-phase view change (lease transfer). A membership change is
  // ANNOUNCED immediately — replicas fence out of lost ranges and start
  // acquisition graces off the announced view — but the AUTHORITATIVE
  // view (what the split-brain probe audits, i.e. who is allowed to
  // produce verdicts) flips only after the announcement has outlived one
  // full ownership lease (lease_held false from announce + lease + 1).
  // Rationale: a perfectly healthy replica that loses a range to a
  // membership *addition* keeps serving it under its stale view until it
  // learns of the change. It cannot be forced to learn in bounded time,
  // but it provably cannot serve past its lease: every lease refresh it
  // can obtain after the announcement either carries the announced view
  // (it stops serving the lost range) or is an older beacon whose acked
  // heartbeat predates the announcement (its lease expires within
  // `lease` ticks). Waiting out one full lease before the flip therefore
  // makes old-owner serving and new-owner serving disjoint in time.
  //
  // Each announced view activates on ITS OWN announce-anchored lease,
  // in announce order: churn inside the window announces a newer view
  // but never delays an earlier one. That safety argument is per view —
  // whoever view V de-owns is fenced by V's announce + lease no matter
  // what is announced afterwards — and the replicas' per-range
  // acquisition/promotion graces anchor on the same tick, so a
  // successor's first full-confidence verdict can never precede the
  // activation of the view that granted it the range.
  while (!pending_.empty() &&
         !lease_held(tick, pending_.front().announced_at, cfg_.lease)) {
    view_ = std::move(pending_.front().view);
    pending_.erase(pending_.begin());
  }

  std::vector<std::uint32_t> live;
  for (std::size_t i = 0; i < cfg_.replicas; ++i) {
    if (!last_heartbeat_[i].has_value()) continue;
    if (tick - *last_heartbeat_[i] >= cfg_.failure_timeout) {
      // Dead until a fresh heartbeat readmits it.
      last_heartbeat_[i] = std::nullopt;
      continue;
    }
    live.push_back(replica_node(i));
  }
  std::sort(live.begin(), live.end());

  const membership_view& target =
      pending_.empty() ? view_ : pending_.back().view;
  if (live != target.live) {
    membership_view next;
    next.epoch = view_epoch(term_, ++view_seq_);
    next.live = std::move(live);
    log_.line(tick, "view epoch=" + std::to_string(next.epoch) +
                        " live=" + live_list(next) +
                        " leader=" + std::to_string(node()));
    pending_.push_back({std::move(next), tick});
    ++log_.stats().view_changes;
    broadcast_view(tick, /*reliable=*/true);
  } else if (tick % cfg_.hb_interval == 0) {
    // The lease is fed continuously: replicas fence themselves when
    // these stop arriving, which is exactly the point.
    broadcast_view(tick, /*reliable=*/false);
  }
}

void controller::broadcast_view(std::uint64_t tick, bool reliable) {
  const auto send = [&](std::uint32_t dst) {
    message m;
    m.kind = msg_kind::view_beacon;
    m.src = node();
    m.dst = dst;
    // Beacons carry the ANNOUNCED view: during a lease-transfer window
    // replicas already fence/acquire off the pending membership while the
    // authoritative view (the split-brain audit) flips only after the old
    // owner's lease has provably run out.
    m.view = announced();
    // Each replica's lease runs on the leader's acknowledgment of its OWN
    // heartbeats, so a replica the leader is about to declare dead can
    // never read a fresh lease out of a beacon that merely happened to
    // arrive.
    m.acked_hb = acked_heartbeat(dst);
    if (reliable) {
      net_.send_reliable(std::move(m), tick);
    } else {
      net_.send(std::move(m), tick);
    }
  };
  send(kRouterNode);
  for (std::size_t i = 0; i < cfg_.replicas; ++i) send(replica_node(i));
}

void controller::on_tick(std::uint64_t tick) {
  if (!up_ || stalled_) return;

  std::vector<message> msgs;
  msgs.swap(inbox_);
  for (const message& m : msgs) handle(m, tick);

  switch (role_) {
    case ctl_role::standby:
      // Staggered candidacy: index j waits j extra heartbeat intervals of
      // silence, so exactly one standby moves first and split votes are
      // avoided deterministically rather than by randomized timeouts.
      if (tick - last_leader_signal_ >
          cfg_.ctl_failure_timeout + index_ * cfg_.hb_interval) {
        start_candidacy(tick);
      }
      break;
    case ctl_role::candidate:
      if (tick - candidacy_started_ > cfg_.ctl_failure_timeout) {
        // Failed round (dead voters, partition): back off to standby and
        // let the stagger retry with a fresh term.
        role_ = ctl_role::standby;
        last_leader_signal_ = tick;
      }
      break;
    case ctl_role::leader:
      if (tick % cfg_.hb_interval == 0) {
        ack_tick_[index_] = tick;  // self-ack rides the beacon cadence
        for (std::size_t j = 0; j < cfg_.controllers; ++j) {
          if (j == index_) continue;
          message m;
          m.kind = msg_kind::leader_beacon;
          m.src = node();
          m.dst = controller_node(j);
          m.ballot = term_;
          net_.send(std::move(m), tick);
        }
      }
      if (acting(tick)) membership_step(tick);
      break;
  }
}

const membership_view& controller::announced() const noexcept {
  return pending_.empty() ? view_ : pending_.back().view;
}

}  // namespace advh::fleet
