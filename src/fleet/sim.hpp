// Single-process discrete-event simulation of the whole detection fleet.
//
// One fleet_sim owns the controller, the router, N replicas, the
// simulated network and the fault plan, and advances them in a fixed
// per-tick phase order:
//
//   1. fault injection (crashes, recoveries, stalls, unstalls)
//   2. controller failure detection + view beacons
//   3. network delivery (messages due this tick, total-ordered)
//   4. router inbox (responses/beacons/bans), then this tick's arrivals
//   5. replicas, ascending node id (clock sync, inbox, heartbeat,
//      canaries, service rounds, handoff, rollout, checkpoints)
//   6. router timeouts (fail-closed abstains)
//
// Because every phase is sequential and every source of randomness is a
// seeded stream keyed on stable identifiers (message sequence numbers,
// request ids, per-sample measurement streams), an entire chaotic
// multi-replica campaign — crashes, loss, drift, recalibration — replays
// bitwise identically at any measurement thread count. The journal
// (event_log) is the witness; bench_fleet_failover diffs it across
// thread counts.
//
// The split-brain gate is instrumented here: each replica's serve probe
// checks, at the instant a served verdict leaves the replica, whether the
// CONTROLLER's authoritative view agrees that the replica owns the
// client's range. Any disagreement increments split_brain_serves, which
// must stay zero.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fleet/config.hpp"
#include "fleet/events.hpp"
#include "fleet/fault_plan.hpp"
#include "fleet/membership.hpp"
#include "fleet/net.hpp"
#include "fleet/replica.hpp"
#include "fleet/router.hpp"

namespace advh::fleet {

/// What the fleet needs from the embedding experiment.
struct fleet_deps {
  /// Genesis detector; must outlive the sim.
  const core::detector* base = nullptr;
  /// Fresh measurement backend per replica boot; the index selects the
  /// replica so replicas can carry distinct noise seeds.
  std::function<std::unique_ptr<hpc::hpc_monitor>(std::size_t)> make_monitor;
  /// Checkpoint/ledger directory (the shipped-state store).
  std::string dir;
  /// Labelled benign canary inputs; must outlive the sim.
  const std::vector<std::pair<std::size_t, tensor>>* canary_pool = nullptr;
};

/// One scheduled client request.
struct arrival {
  std::uint64_t tick = 0;
  std::uint64_t client = 0;
  tensor input;
};

class fleet_sim {
 public:
  /// Validates `cfg` (including the split-brain safety condition) and
  /// boots the fleet at tick 0 with the genesis view installed.
  fleet_sim(const fleet_config& cfg, fleet_deps deps, fault_plan plan);

  /// Runs `horizon` ticks, injecting `arrivals` at their scheduled ticks
  /// (equal-tick arrivals submit in the given order). May be called
  /// repeatedly; ticks continue from where the previous run stopped.
  void run(std::vector<arrival> arrivals, std::uint64_t horizon);

  const event_log& log() const noexcept { return log_; }
  /// Counters with the network stats folded in.
  fleet_stats stats() const;
  /// The controller's view — the authority the split-brain probe uses.
  const membership_view& authoritative_view() const noexcept {
    return controller_.view();
  }
  const router& route() const noexcept { return *router_; }
  replica& worker(std::size_t i) { return *replicas_[i]; }
  std::uint64_t now() const noexcept { return tick_; }

 private:
  void deliver(std::uint64_t tick);
  void broadcast_view(std::uint64_t tick, bool reliable);

  fleet_config cfg_;
  fleet_deps deps_;
  fault_plan plan_;
  event_log log_;
  sim_net net_;
  controller controller_;
  std::unique_ptr<router> router_;
  std::vector<std::unique_ptr<replica>> replicas_;
  std::uint64_t tick_ = 0;
  std::uint64_t dropped_dst_down_ = 0;
};

}  // namespace advh::fleet
