// Single-process discrete-event simulation of the whole detection fleet.
//
// One fleet_sim owns the replicated controller group, the router, N
// replicas, the simulated network and the fault plan, and advances them
// in a fixed per-tick phase order:
//
//   1. fault injection (seeded disk corruption against the shared
//      checkpoint/ledger store first, then crashes, recoveries, stalls,
//      unstalls — workers and controllers alike; partitions are data,
//      consulted by the net at send time)
//   2. controllers, ascending index (inbox, election timers, leader
//      beacons; the acting leader additionally runs failure detection
//      and view beacons); then the split-brain audit view advances to
//      the max-epoch ACTIVATED view across the group
//   3. network delivery (messages due this tick, total-ordered)
//   4. router inbox (responses/beacons/bans), then this tick's arrivals
//   5. replicas, ascending node id (clock sync, inbox, heartbeat,
//      canaries, service rounds, handoff, rollout, checkpoints)
//   6. router speculation + timeouts (fail-closed abstains)
//
// Because every phase is sequential and every source of randomness is a
// seeded stream keyed on stable identifiers (message sequence numbers,
// request ids, per-sample measurement streams), an entire chaotic
// multi-replica campaign — crashes, loss, partitions, elections, drift,
// recalibration — replays bitwise identically at any measurement thread
// count. The journal (event_log) is the witness; bench_fleet_failover
// diffs it across thread counts.
//
// The split-brain gate is instrumented here: each replica's serve probe
// checks, at the instant a served verdict leaves the replica, whether
// the ELECTED leader's activated view (the max-epoch view any controller
// has made authoritative) grants that replica an ownership slot for the
// client's range — the primary slot for a full-confidence verdict, any
// slot for a degraded one. Any disagreement increments
// split_brain_serves, which must stay zero.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fleet/config.hpp"
#include "fleet/events.hpp"
#include "fleet/fault_plan.hpp"
#include "fleet/membership.hpp"
#include "fleet/net.hpp"
#include "fleet/replica.hpp"
#include "fleet/router.hpp"

namespace advh::fleet {

/// What the fleet needs from the embedding experiment.
struct fleet_deps {
  /// Genesis detector; must outlive the sim.
  const core::detector* base = nullptr;
  /// Fresh measurement backend per replica boot; the index selects the
  /// replica so replicas can carry distinct noise seeds.
  std::function<std::unique_ptr<hpc::hpc_monitor>(std::size_t)> make_monitor;
  /// Checkpoint/ledger directory (the shipped-state store).
  std::string dir;
  /// Labelled benign canary inputs; must outlive the sim.
  const std::vector<std::pair<std::size_t, tensor>>* canary_pool = nullptr;
};

/// One scheduled client request.
struct arrival {
  std::uint64_t tick = 0;
  std::uint64_t client = 0;
  tensor input;
};

class fleet_sim {
 public:
  /// Validates `cfg` (including both split-brain safety conditions) and
  /// boots the fleet at tick 0 with the genesis view installed and
  /// controller 0 leading term 1.
  fleet_sim(const fleet_config& cfg, fleet_deps deps, fault_plan plan);

  /// Runs `horizon` ticks, injecting `arrivals` at their scheduled ticks
  /// (equal-tick arrivals submit in the given order). May be called
  /// repeatedly; ticks continue from where the previous run stopped.
  void run(std::vector<arrival> arrivals, std::uint64_t horizon);

  const event_log& log() const noexcept { return log_; }
  /// Counters with the network stats folded in.
  fleet_stats stats() const;
  /// The max-epoch view any controller has ACTIVATED — the elected
  /// leader's, by construction — and the authority the split-brain probe
  /// audits against. It survives the leader's crash: the last activated
  /// view stays authoritative until a successor activates a higher one.
  const membership_view& authoritative_view() const noexcept {
    return audit_view_;
  }
  const router& route() const noexcept { return *router_; }
  replica& worker(std::size_t i) { return *replicas_[i]; }
  controller& ctl(std::size_t j) { return *controllers_[j]; }
  const controller& ctl(std::size_t j) const { return *controllers_[j]; }
  /// The controller currently acting as leader, if any.
  const controller* acting_leader() const;
  std::uint64_t now() const noexcept { return tick_; }

 private:
  void deliver(std::uint64_t tick);

  fleet_config cfg_;
  fleet_deps deps_;
  fault_plan plan_;
  event_log log_;
  sim_net net_;
  std::vector<std::unique_ptr<controller>> controllers_;
  std::unique_ptr<router> router_;
  std::vector<std::unique_ptr<replica>> replicas_;
  /// Monotone max-epoch activated view across the controller group.
  membership_view audit_view_;
  /// Announcements observed from any up controller, with their announce
  /// ticks, awaiting their own announce-anchored lease to expire. Kept by
  /// the SIM rather than read off the controller because announced views
  /// must still activate for audit purposes when the announcing leader
  /// crashes before its own activation sweep — the replicas anchored
  /// their acquisition graces on the announce tick and will start
  /// serving when that lease runs out, leader alive or not.
  struct announced_rec {
    membership_view view;
    std::uint64_t at = 0;
  };
  std::vector<announced_rec> announced_;
  std::uint64_t last_announced_epoch_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t dropped_dst_down_ = 0;
};

}  // namespace advh::fleet
