// One fleet worker replica: an embedded detection_service + query_tracker
// behind the epoch fence, with crash/recovery, checkpoint shipping,
// fingerprint-range handoff and quorum-gated recalibration.
//
// A replica is a state machine driven once per simulation tick. All of
// its volatile state — service, tracker, virtual clock, model mirror,
// drift cells — dies on crash() and is rebuilt by recover() from the
// durable artifacts alone: shard checkpoint files and ban ledgers
// (fleet/checkpoint). What recovery restores is therefore exactly what
// the fleet's durability story claims to protect: detector parameters as
// of the last promoted checkpoint, and every ban decision ever persisted
// by any replica.
//
// Serving discipline (the epoch fence): a replica produces a verdict for
// a routed request only when ALL of
//   1. the controller's acknowledgment of this replica's heartbeats
//      (carried on every beacon) is at most `lease` ticks old,
//   2. the request's epoch equals its installed view epoch,
//   3. it holds an ownership slot for the request's ring range under
//      that view — the PRIMARY slot for a normally routed request, any
//      slot below the replication factor for a speculative re-route
//      (which it serves under a degraded-confidence tag),
//   4. any range it newly covers through a view change has outlived its
//      acquisition grace (the previous — possibly perfectly healthy —
//      owner's lease must have provably expired first),
// hold — both at admission and again when the response leaves (a view
// may change while a request is queued). Anything else resolves
// abstain_fenced: fail closed, never a stale verdict. Combined with the
// config invariant lease + max_delay < failure_timeout, a replica whose
// ranges have been reassigned is provably self-fenced before its
// successor can begin serving them.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/detector_io.hpp"
#include "fleet/checkpoint.hpp"
#include "fleet/config.hpp"
#include "fleet/events.hpp"
#include "fleet/fault_plan.hpp"
#include "fleet/membership.hpp"
#include "fleet/net.hpp"
#include "hpc/monitor.hpp"
#include "serve/service.hpp"
#include "track/tracker.hpp"

namespace advh::fleet {

/// What a replica needs from the outside world. The monitor factory is
/// called at every boot (genesis and recovery), so each boot starts from
/// a deterministic measurement-noise state.
struct replica_deps {
  /// Genesis detector (full model set, content version 1). Must outlive
  /// the fleet.
  const core::detector* base = nullptr;
  std::function<std::unique_ptr<hpc::hpc_monitor>()> make_monitor;
  /// Shared checkpoint/ledger directory (models the shipped-state store).
  std::string dir;
  /// Known-benign labelled inputs for canary probing; drives drift cells
  /// and fills the recalibration reservoirs. Must outlive the fleet.
  const std::vector<std::pair<std::size_t, tensor>>* canary_pool = nullptr;
};

class replica {
 public:
  replica(std::size_t index, const fleet_config& cfg, replica_deps deps,
          sim_net& net, const fault_plan& plan, event_log& log);

  std::uint32_t node() const noexcept { return replica_node(index_); }
  bool up() const noexcept { return up_; }
  bool is_stalled() const noexcept { return stalled_; }

  // Fault injection (sim tick loop). crash() drops volatile state and the
  // inbox; recover() reboots from disk; stall()/unstall() freeze and
  // resume processing (the inbox keeps buffering while stalled).
  void crash(std::uint64_t tick);
  void recover(std::uint64_t tick);
  void stall(std::uint64_t tick);
  void unstall(std::uint64_t tick);

  /// Delivers one network message (dropped when the replica is down).
  void enqueue(message m);

  /// One simulation tick: clock sync, inbox, heartbeat, canary probes,
  /// service rounds, handoff and rollout progress, periodic checkpoints.
  void on_tick(std::uint64_t tick);

  /// Split-brain / integrity instrumentation: invoked with
  /// (node, client, degraded, shard) immediately before a served verdict
  /// leaves this replica, where `shard` is the template shard the
  /// verdict's predicted class maps to. The sim points this at the
  /// ELECTED leader's authoritative view; `degraded` tells the audit
  /// whether a secondary slot legitimizes the serve, and `shard` lets it
  /// assert that no checksum-fenced shard ever backs a verdict.
  void set_serve_probe(std::function<void(std::uint32_t, std::uint64_t, bool,
                                          std::uint64_t)>
                           p) {
    probe_ = std::move(p);
  }

  /// True while `shard` is corrupt-fenced on this replica: its durable
  /// copy failed checksum verification at boot (or a repair has not yet
  /// landed), so no verdict backed by it may leave at full confidence.
  bool shard_fenced(std::uint64_t shard) const {
    return corrupt_.count(shard) != 0;
  }
  const std::set<std::uint64_t>& corrupt_shards() const { return corrupt_; }
  /// Canonical CRC32C of this replica's in-memory content for `shard`
  /// (fleet/integrity) — exposed for determinism tests.
  std::uint32_t content_digest(std::uint64_t shard) const;

  const membership_view& view() const noexcept { return view_; }
  std::uint64_t applied_version(std::uint64_t shard) const;
  const serve::detection_service* service() const noexcept {
    return service_.get();
  }
  const track::query_tracker* tracker() const noexcept {
    return tracker_.get();
  }

 private:
  void boot(std::uint64_t tick, bool genesis);
  void rebuild_detector();
  /// The ownership slot this node may serve `range` under right now, or
  /// nullopt when fenced (no view, stale lease, no slot, or inside the
  /// acquisition grace). Slot 0 = primary; callers decide whether a
  /// non-primary slot is acceptable (speculative re-routes only).
  std::optional<std::uint32_t> fence_slot(std::uint32_t range,
                                          std::uint64_t tick) const;
  void respond(std::uint64_t tick, std::uint64_t req_id, std::uint64_t client,
               std::uint32_t range, req_outcome outcome, bool flagged,
               bool degraded = false);

  void handle(message& m, std::uint64_t tick);
  void handle_request(message& m, std::uint64_t tick);
  void apply_beacon(const message& m, std::uint64_t tick);
  void apply_checkpoint(const message& m, std::uint64_t tick);
  void persist_ban(std::uint64_t client, std::uint64_t tick);
  void replay_ban_ledgers(std::uint64_t tick);

  // --- anti-entropy (integrity tentpole) ---
  /// Periodic scrub: re-verify owned on-disk files (republishing from
  /// clean memory on rot), then exchange shard/ban digests with every
  /// live peer (best-effort, like gossip — loss only delays repair).
  void scrub_step(std::uint64_t tick);
  void handle_digest(const message& m, std::uint64_t tick);
  void handle_repair_request(const message& m, std::uint64_t tick);
  void handle_repair_announce(const message& m, std::uint64_t tick);
  void handle_ban_sync(const message& m, std::uint64_t tick);
  /// Whether this node currently holds ANY ownership slot for `shard`
  /// below the replication factor — the authority test for acting as a
  /// repair source.
  bool owns_shard_slot(std::uint64_t shard) const;

  void canary_step(std::uint64_t tick);
  void service_step(std::uint64_t tick);
  void handoff_step(std::uint64_t tick);
  void rollout_step(std::uint64_t tick);
  void stage_refit(std::uint64_t tick);
  void finish_rollout(bool ok, std::uint64_t tick);
  void publish_checkpoints(std::uint64_t tick);
  void reset_cells_for_shard(std::uint64_t shard);

  std::size_t index_;
  const fleet_config& cfg_;
  replica_deps deps_;
  sim_net& net_;
  const fault_plan& plan_;
  event_log& log_;

  bool up_ = false;
  bool stalled_ = false;
  std::vector<message> inbox_;

  // --- volatile node state, rebuilt at every boot ---
  std::unique_ptr<serve::virtual_clock> clock_;
  std::unique_ptr<hpc::hpc_monitor> monitor_;
  std::unique_ptr<track::query_tracker> tracker_;
  /// Every detector generation this boot has served with; the service
  /// holds a pointer into the latest, older ones stay alive until reboot.
  std::vector<std::unique_ptr<core::detector>> dets_;
  /// Full model mirror (base + every applied shard overlay).
  std::vector<std::vector<std::optional<core::event_model>>> models_;
  std::unique_ptr<serve::detection_service> service_;

  membership_view view_;
  /// Monotone max of received beacon send ticks — the lease clock. Using
  /// the *send* tick means stale beacons buffered during a stall can
  /// never unfence a replica after it resumes.
  std::uint64_t freshest_beacon_ = 0;

  struct pending_req {
    std::uint64_t req_id = 0;
    std::uint64_t client = 0;
    std::uint32_t range = 0;
    /// Speculative re-route: any ownership slot may serve it (degraded).
    bool speculative = false;
  };
  /// service submission id -> routed-request context.
  std::map<std::uint64_t, pending_req> pending_;

  /// This node's durable ban decisions, mirrored in its ledger file.
  std::vector<std::uint64_t> local_bans_;
  /// Union of every ban this boot knows about (all ledgers at replay,
  /// every announce and ban_sync since) — the surface the anti-entropy
  /// ban digest is computed over.
  std::set<std::uint64_t> known_bans_;
  /// Per template shard: applied content version and its epoch fence.
  std::map<std::uint64_t, std::uint64_t> applied_;
  std::map<std::uint64_t, std::uint64_t> applied_epoch_;

  /// Corrupt-fenced shards: their durable copy failed verification at
  /// boot and no repair has landed yet. A fenced shard serves no
  /// full-confidence verdict, publishes no checkpoint and answers no
  /// repair_request (it would launder genesis state as repaired truth).
  std::set<std::uint64_t> corrupt_;
  /// shard -> tick of the last repair_request we sent for it; suppresses
  /// re-requests within one scrub period.
  std::map<std::uint64_t, std::uint64_t> repair_requested_;
  /// peer -> tick of the last ban_sync we pushed to it (rate bound).
  std::map<std::uint32_t, std::uint64_t> ban_synced_;
  /// repair_requests issued since the last scrub (<= cfg.repair_batch).
  std::size_t repairs_in_round_ = 0;
  /// repair_requests answered this tick (<= cfg.repair_batch).
  std::uint64_t repairs_served_tick_ = 0;
  std::size_t repairs_served_count_ = 0;

  // --- drift / recalibration ---
  std::vector<std::vector<core::drift_cell>> cells_;  // [class][event]
  std::vector<std::vector<std::vector<double>>> reservoir_;  // [class][row]
  std::vector<std::vector<const tensor*>> canaries_;  // [class] -> inputs
  std::vector<std::size_t> canary_cursor_;

  struct rollout_state {
    std::uint64_t shard = 0;
    std::uint64_t staged_version = 0;
    std::uint64_t ballot = 0;
    std::uint64_t votes_yes = 0;
    std::uint64_t votes_total = 0;
    std::uint64_t started = 0;
    bool staging = false;  ///< false: collecting votes; true: validating
    std::string staged_path;
  };
  std::optional<rollout_state> rollout_;
  std::unique_ptr<core::detector> staged_det_;
  std::uint64_t ballot_counter_ = 0;
  std::uint64_t last_ballot_tick_ = 0;

  /// Active range handoffs: range -> destination node.
  std::map<std::uint32_t, std::uint32_t> handoffs_;
  /// Ranges newly covered (any ownership slot) through a view change ->
  /// the change beacon's send tick. fence_slot refuses to serve such a
  /// range until the previous owner's lease has provably expired (send
  /// tick + lease), closing the healthy-predecessor window a membership
  /// addition opens.
  std::map<std::uint32_t, std::uint64_t> acquired_at_;
  /// Ranges whose PRIMARY slot was newly acquired while we already held a
  /// lower slot (a secondary promoted by a view change) -> the change
  /// beacon's send tick. Until the deposed primary's lease has run out,
  /// fence_slot demotes such a range to degraded-only serving: the old
  /// primary may still be serving it full-confidence under its stale view
  /// and lease, and only one full-confidence server per range may exist
  /// at any instant.
  std::map<std::uint32_t, std::uint64_t> promoted_at_;

  std::function<void(std::uint32_t, std::uint64_t, bool, std::uint64_t)>
      probe_;
};

}  // namespace advh::fleet
