// Shared journal + counters of one fleet simulation run.
//
// Every externally observable event — request resolutions, view changes,
// ban decisions, checkpoint promotions, fault injections — is appended as
// one text line at a deterministic point of the tick loop, so the whole
// journal is the run's reproducibility witness: two runs of the same
// scenario must produce byte-identical journals at any thread count
// (bench_fleet_failover gates on exactly that).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "fleet/net.hpp"

namespace advh::fleet {

struct fleet_stats {
  std::uint64_t submitted = 0;
  /// Terminal buckets, indexed by req_outcome.
  std::array<std::uint64_t, 10> by_outcome{};
  /// Served verdicts produced by a replica that was not the authoritative
  /// owner of the client's range at serve time (controller's view). The
  /// epoch fence exists to keep this at zero; the failover bench gates on
  /// it.
  std::uint64_t split_brain_serves = 0;
  std::uint64_t bans_decided = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t stalls = 0;
  std::uint64_t view_changes = 0;
  /// Controller leadership elections won (a standby became leader after a
  /// quorum ballot). The genesis leader does not count.
  std::uint64_t elections = 0;
  /// Requests speculatively re-routed to a secondary owner after primary
  /// silence, and the subset of served verdicts actually produced by a
  /// secondary (tagged degraded-confidence).
  std::uint64_t speculative_routes = 0;
  std::uint64_t served_secondary = 0;
  /// Clients moved between replicas by range handoff.
  std::uint64_t handoff_clients = 0;
  std::uint64_t checkpoints_published = 0;
  std::uint64_t checkpoints_applied = 0;
  std::uint64_t canary_probes = 0;
  std::uint64_t drift_alarms = 0;
  /// Recalibration rollouts promoted fleet-wide / rolled back after a
  /// failed canary validation.
  std::uint64_t rollouts = 0;
  std::uint64_t rollbacks = 0;

  // ------------------------------------------------- integrity layer --
  /// Disk-corruption faults the plan injected (bit flips, truncations,
  /// stale resurrections of checkpoint and ledger files).
  std::uint64_t corrupt_faults = 0;
  /// Shards fenced after a checksum verification failed — each fence
  /// means a replica refused to serve bytes it could not vouch for.
  std::uint64_t shards_fenced_corrupt = 0;
  /// Anti-entropy scrub rounds run, digest messages sent, digest sends
  /// suppressed by a scripted digest blackout, and digest comparisons
  /// that found a divergence.
  std::uint64_t scrub_rounds = 0;
  std::uint64_t digests_sent = 0;
  std::uint64_t digests_suppressed = 0;
  std::uint64_t digest_mismatches = 0;
  /// Pull-based shard repair: requests issued, checkpoint paths served
  /// back by a peer, repairs that applied successfully, and local
  /// re-publishes healing a rotted on-disk file from clean memory.
  std::uint64_t repairs_requested = 0;
  std::uint64_t repairs_served = 0;
  std::uint64_t repairs_completed = 0;
  std::uint64_t repairs_local = 0;
  /// Ban ids force-applied from a peer's ban_sync message.
  std::uint64_t bans_synced = 0;
  /// Computed verdicts converted to abstain_corrupt at response time
  /// because their predicted class lives on a corrupt-fenced shard.
  std::uint64_t verdicts_suppressed_corrupt = 0;
  /// Ban-ledger reads that found a torn tail (crash-truncated final
  /// record) and recovered the valid prefix.
  std::uint64_t ledger_torn_tails = 0;
  /// Full-confidence verdicts served from a checksum-fenced shard — the
  /// integrity invariant; the sim audit and bench gate hold this at zero.
  std::uint64_t corrupt_full_conf_serves = 0;
  net_stats net{};

  std::uint64_t outcome(req_outcome o) const noexcept {
    return by_outcome[static_cast<std::size_t>(o)];
  }
};

class event_log {
 public:
  void line(std::uint64_t tick, const std::string& what) {
    text_ += "t=" + std::to_string(tick) + " " + what + "\n";
  }

  const std::string& text() const noexcept { return text_; }
  fleet_stats& stats() noexcept { return stats_; }
  const fleet_stats& stats() const noexcept { return stats_; }

  void count(req_outcome o) {
    ++stats_.by_outcome[static_cast<std::size_t>(o)];
  }

 private:
  std::string text_;
  fleet_stats stats_;
};

}  // namespace advh::fleet
