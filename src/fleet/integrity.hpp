// Integrity primitives for the fleet's anti-entropy layer.
//
// Three digest surfaces, all CRC32C over a *canonical* serialisation —
// fixed field order, class-ascending / event-ascending iteration, no
// pointer or container-order dependence — so two replicas holding the
// same logical content always compute bitwise-identical digests,
// regardless of thread count or the order shards were loaded in:
//
//   * shard_content_digest — one (model, class) template shard of a
//     replica's in-memory model mirror. This is the leaf the periodic
//     digest exchange compares; a mismatch at equal (epoch, version)
//     means divergent content, a lower (epoch, version) means a stale
//     peer, and either triggers pull-based read repair.
//   * ban_set_digest — a replica's known durable ban decisions (sorted
//     set + count). A mismatch triggers a full ban_sync so every ban
//     decided anywhere converges into every ledger.
//   * digest_root — Merkle-style pairwise fold of leaf digests into one
//     root, journalled per scrub round: the existing byte-identity chaos
//     gates then also witness digest determinism for free.
//
// verify_checkpoint_file is the cheap on-disk half: it checks a shard
// checkpoint's whole-file checksum trailer without parsing the body, so
// a scrub can audit every owned file per round at O(file size) with no
// allocation-heavy detector reconstruction.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "fleet/config.hpp"

namespace advh::fleet {

/// CRC32C over the canonical serialisation of `shard`'s cells in
/// `models` (classes with cls % class_shards == shard, ascending; events
/// ascending; presence byte, then threshold / nll stats / template size /
/// mixture order / components). Bitwise identical for equal content at
/// any thread count and any shard-load order.
std::uint32_t shard_content_digest(
    const std::vector<std::vector<std::optional<core::event_model>>>& models,
    std::uint64_t shard, const fleet_config& cfg);

/// CRC32C over the count and the ascending ids of `bans` (std::set
/// iteration is already sorted, so the serialisation is canonical).
std::uint32_t ban_set_digest(const std::set<std::uint64_t>& bans);

/// Merkle-style pairwise fold of `leaves` into one root digest. An odd
/// leaf is promoted unpaired; an empty vector folds to 0. Sensitive to
/// leaf order — callers pass leaves in a canonical order (ascending
/// shard, then the ban leaf).
std::uint32_t digest_root(std::vector<std::uint32_t> leaves);

/// True when the file at `path` exists and its last 8 bytes are a valid
/// ADET v5 checksum trailer ("ADCK" magic + CRC32C matching every
/// preceding byte). False for missing, short, or mismatching files —
/// this does NOT parse the body, so a structurally corrupt file with a
/// freshly forged trailer would still be caught by the full load path.
bool verify_checkpoint_file(const std::string& path);

}  // namespace advh::fleet
