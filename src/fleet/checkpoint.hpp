// Checkpoint shipping and durable ban ledgers — the fleet's recovery
// substrate.
//
// Each shard owner periodically publishes its (model, class) template
// shard as a restricted ADET v5 checkpoint (only the shard's classes
// carry models; the fleet section records epoch, shard identity and a
// monotone content version). Files land as
//
//   <dir>/shard<S>_v<V>.adet      — immutable versioned snapshot
//   <dir>/shard<S>_latest.adet    — alias, republished atomically
//
// both through advh::atomic_write_file, so a crash at any instant leaves
// loadable files. Receivers never trust a file by its name:
// load_shard_checkpoint fences on every metadata field and throws a typed
// io_error — wrong shard, foreign shard geometry, epoch regression,
// non-advancing content version, or a legacy file with no fleet section
// at all. A fenced or corrupt checkpoint is rejected whole; there is no
// partial apply by construction (merge happens only after a load returned).
// Because view epochs compose the controller's leadership term with a
// per-term sequence (`epoch = term << 32 | seq`), the same plain
// epoch-regression comparison also fences across controller failovers: a
// checkpoint published under a deposed leader's term can never displace
// one published under the successor's, with no extra ledger state.
//
// Ban ledgers are the other durable artifact: every replica appends its
// locally-decided bans to <dir>/bans_r<node>.advhbans *before* the
// banning response leaves the node, so a ban decision can never be lost
// to a crash — the acceptance gate "zero lost ban decisions" rests on
// this write ordering.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/detector_io.hpp"
#include "fleet/config.hpp"
#include "fleet/membership.hpp"

namespace advh::fleet {

std::string shard_checkpoint_path(const std::string& dir, std::uint64_t shard,
                                  std::uint64_t content_version);
std::string shard_latest_path(const std::string& dir, std::uint64_t shard);
std::string ban_ledger_path(const std::string& dir, std::uint32_t node);

/// The per-(class, event) model matrix of `det`, copied out so a replica
/// can overlay shipped shards and reassemble via detector::from_parts.
std::vector<std::vector<std::optional<core::event_model>>> models_of(
    const core::detector& det);

/// A copy of `det` carrying models only for the classes of `shard`
/// (cls % class_shards == shard); every other class scores as unmodeled.
core::detector restrict_to_shard(const core::detector& det,
                                 std::uint64_t shard,
                                 const fleet_config& cfg);

/// Writes the immutable versioned snapshot only, WITHOUT touching the
/// latest alias — what a recalibration stages for canary validation. A
/// poisoned staged file must never become what a recovering replica
/// loads, so the alias flips only at promotion (save_shard_checkpoint).
std::string stage_shard_checkpoint(const core::detector& det,
                                   const fleet_config& cfg,
                                   const std::string& dir, std::uint64_t shard,
                                   const core::checkpoint_meta& meta);

/// Publishes `det`'s `shard` under `meta`: writes the immutable versioned
/// snapshot, then republishes the latest alias. Returns the versioned
/// path (what checkpoint_announce carries).
std::string save_shard_checkpoint(const core::detector& det,
                                  const fleet_config& cfg,
                                  const std::string& dir, std::uint64_t shard,
                                  const core::checkpoint_meta& meta);

/// Loads and fences a shipped shard checkpoint. Throws advh::io_error
/// when the file has no fleet section (legacy/foreign file), names a
/// different shard or shard geometry, carries an epoch below `min_epoch`,
/// or a content version not strictly above `min_version_exclusive`
/// (pass 0 to accept any version). On success the whole checkpoint is
/// returned; fencing rejections never leave partial state anywhere.
core::checkpoint load_shard_checkpoint(const std::string& path,
                                       std::uint64_t expected_shard,
                                       const fleet_config& cfg,
                                       std::uint64_t min_epoch,
                                       std::uint64_t min_version_exclusive);

/// Overlays `src`'s models for the classes of `shard` onto `models`
/// (other classes untouched). `src` must have the same geometry.
void merge_shard(
    std::vector<std::vector<std::optional<core::event_model>>>& models,
    const core::detector& src, std::uint64_t shard, const fleet_config& cfg);

/// Atomically writes a ban ledger (ADBL v2: magic, version, count, then
/// per record the client id + a CRC32C binding the id to its position).
void write_ban_ledger(const std::string& path,
                      const std::vector<std::uint64_t>& clients);

/// Result of a checked ban-ledger read. The valid record prefix always
/// survives: a torn final write (crash mid-append) or a corrupt record
/// mid-file truncates the trusted region at the first bad checksum
/// ("the ledger ends here") instead of voiding every ban before it.
/// Only a corrupt header — where nothing can be trusted — marks the
/// whole ledger bad.
struct ban_ledger_read {
  std::vector<std::uint64_t> clients;  // valid prefix, in append order
  bool torn_tail = false;       // a record failed its checksum / ran short
  std::uint64_t dropped_records = 0;  // records after the tear
  bool header_corrupt = false;  // magic/version/count unreadable
};

/// Reads a ban ledger without throwing on content damage. A missing file
/// is an empty ledger. Reads both ADBL v2 (checksummed) and legacy v1.
ban_ledger_read read_ban_ledger_checked(const std::string& path);

/// Reads a ban ledger. A missing file is an empty ledger (no bans were
/// ever recorded there); a torn tail is tolerated (the valid prefix is
/// returned); a corrupt header throws advh::io_error.
std::vector<std::uint64_t> read_ban_ledger(const std::string& path);

}  // namespace advh::fleet
