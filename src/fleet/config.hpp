// Fleet-wide configuration: replica count, shard/ring geometry, the
// discrete-event timing contract, and the simulated-network model.
//
// Everything here is counted in *ticks* — the quantum of the fleet
// simulation's discrete-event loop. Each tick corresponds to
// `fleet_config::tick` of virtual-clock time on every replica, so fleet
// timing composes with the serve layer's deadline machinery without unit
// mismatches.
//
// The one non-negotiable relation is the split-brain safety condition
// validated by `validate()`:
//
//   lease + max_delay < failure_timeout
//
// A replica self-fences (serves nothing, abstains fail-closed) once its
// lease clock — the controller's last acknowledged heartbeat from it,
// carried on every view beacon — is older than `lease`. The controller
// only reassigns a replica's shards after `failure_timeout` of heartbeat
// silence, and failure_timeout > lease + max_delay >= lease, so by the
// time any reassignment takes effect the stale owner's best possible
// acked-heartbeat is already `failure_timeout` old: it is provably
// self-fenced and can never serve a verdict concurrently with its
// successor. (The lease deliberately runs on acked heartbeats rather
// than beacon send times: heartbeat loss and beacon loss are independent
// under a lossy network, and a send-time lease would leave a replica
// whose heartbeats are being dropped unfenced while it is declared dead.)
#pragma once

#include <chrono>
#include <cstdint>

#include "core/drift.hpp"
#include "serve/clock.hpp"
#include "serve/service.hpp"
#include "track/tracker.hpp"

namespace advh::fleet {

struct fleet_config {
  /// Worker replicas (node ids 2 .. replicas+1; 1 = router; the
  /// controller group lives at node ids 100..).
  std::size_t replicas = 3;
  /// Replicated controller group size. One of them holds the leadership
  /// lease and is the view authority; the others are warm standbys that
  /// elect a successor when the leader goes silent. 1 degenerates to the
  /// single-controller fleet (self-quorum, no failover).
  std::size_t controllers = 3;
  /// Ownership replication factor: each ring range / template shard has
  /// this many owners (slot 0 = primary, serves normally; higher slots
  /// serve speculative re-routes under a degraded-confidence tag).
  /// Capped by the live replica count at evaluation time.
  std::uint32_t replication = 2;
  /// (model, class) template shards: class c belongs to shard
  /// c % class_shards.
  std::uint64_t class_shards = 2;
  /// Fingerprint-ring ranges: the 2^64 client-hash ring splits into this
  /// many equal arcs, each owned by one replica under the current view.
  std::uint32_t ring_ranges = 8;
  /// Virtual-clock time one tick represents on every replica.
  serve::clock_duration tick = std::chrono::milliseconds(1);

  // --- membership / fencing (ticks) ---
  std::uint64_t hb_interval = 2;
  /// Heartbeat silence after which the controller declares a replica dead
  /// and bumps the view epoch.
  std::uint64_t failure_timeout = 16;
  /// Beacon-freshness fence: a replica whose freshest beacon send-tick is
  /// older than this abstains instead of serving.
  std::uint64_t lease = 8;

  // --- controller leadership (ticks) ---
  /// Leader silence after which a standby starts a candidacy (plus an
  /// index-proportional stagger that deterministically avoids split
  /// votes).
  std::uint64_t ctl_failure_timeout = 16;
  /// Leadership lease: a leader publishes views only while a quorum of
  /// controllers acked its term beacon within this many ticks. The
  /// split-brain condition ctl_lease + max_delay < ctl_failure_timeout
  /// mirrors the worker-side one.
  std::uint64_t ctl_lease = 8;

  // --- routing ---
  /// Router-side deadline: a routed request with no response within this
  /// many ticks resolves fail-closed as an abstain.
  std::uint64_t request_timeout = 12;
  /// Ticks of primary silence before the router speculatively re-routes
  /// a pending request to the secondary owner. Must leave the secondary
  /// room to respond inside request_timeout.
  std::uint64_t speculate_after = 4;

  // --- checkpoint shipping / recalibration (ticks) ---
  /// Period of a shard owner's checkpoint republish (plus one at boot and
  /// one at every recalibration promotion).
  std::uint64_t checkpoint_interval = 32;
  std::uint64_t canary_interval = 16;
  /// Clients moved per tick per range during a fingerprint-range handoff
  /// (one batch in flight per range).
  std::size_t handoff_batch = 4;

  // --- integrity / anti-entropy (ticks) ---
  /// Period of the anti-entropy scrub: every this many ticks a replica
  /// re-verifies its own on-disk artifacts and exchanges range digests
  /// with its ownership peers (read repair rides on the divergences).
  std::uint64_t scrub_period = 24;
  /// Repair-traffic bound: at most this many shard repairs a replica
  /// requests per scrub round, so anti-entropy can never starve serving.
  std::size_t repair_batch = 1;
  /// Per-(file, opportunity) probability of a seeded disk-corruption
  /// fault when corruption chaos is enabled (0 disables).
  double corrupt_rate = 0.0;

  // --- simulated network ---
  /// Per-attempt loss probability for every simulated message.
  double loss_rate = 0.0;
  std::uint64_t min_delay = 0;  ///< delivery delay lower bound (ticks)
  std::uint64_t max_delay = 2;  ///< delivery delay upper bound (ticks)
  /// Retransmission period for reliable control messages.
  std::uint64_t retransmit = 3;

  std::uint64_t seed = 0xf1ee7;

  /// Per-replica embedded service / tracker / drift policies.
  serve::serve_config serve{};
  track::track_config track{};
  core::drift_policy drift{};
};

/// Applies the strict environment overrides to `base` and returns it:
/// ADVH_FLEET_REPLICAS (integer in [1, 64]) overrides `replicas`,
/// ADVH_FLEET_CONTROLLERS (integer in [1, 7]) overrides `controllers`,
/// ADVH_FLEET_REPLICATION (integer in [1, 4]) overrides `replication`,
/// ADVH_FLEET_LOSS_RATE (number in [0, 0.95]) overrides `loss_rate`,
/// ADVH_FLEET_SCRUB_PERIOD (integer in [1, 1000000]) overrides
/// `scrub_period`, ADVH_FLEET_CORRUPT_RATE (number in [0, 0.5])
/// overrides `corrupt_rate`. A
/// set-but-malformed knob throws std::invalid_argument — the strict
/// validation contract every ADVH_* knob follows: a typo in a deployment
/// manifest must fail loudly, not silently mis-size the fleet.
fleet_config fleet_config_from_env(fleet_config base = fleet_config{});

/// Rejects inconsistent fleet geometry and, above all, any configuration
/// violating the split-brain safety condition lease + max_delay <
/// failure_timeout. Throws std::invalid_argument.
void validate(const fleet_config& cfg);

}  // namespace advh::fleet
