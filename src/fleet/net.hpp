// Deterministic simulated network for the fleet discrete-event loop.
//
// The trick that keeps multi-replica chaos bitwise reproducible: a
// message's complete delivery fate — lost or delivered, at which tick —
// is computed entirely AT SEND TIME from seeded per-message RNG streams.
// No retransmission machinery runs later; for a reliable message the
// sender's schedule already accounts for every retransmission attempt
// (attempt k is lost with `loss_rate` independently; the first surviving
// attempt delivers at send + k * retransmit + delay). Attempt 64 always
// survives, so reliable control traffic (view beacons, checkpoint
// promotions, ban announcements, handoff batches) is guaranteed to land
// — late, maybe, but deterministically. Best-effort traffic (requests,
// responses, heartbeats) gets a single attempt: one Bernoulli draw, lost
// means gone, and the loss is counted.
//
// Pending messages sit in a min-heap ordered by (deliver_tick, sequence
// number), so delivery order is a total order independent of anything
// the rest of the simulation does.
//
// Network partitions come from the fault plan (symmetric group splits
// scheduled before the run) and stay an at-send property too: a
// best-effort attempt across a severed edge is lost; a reliable message
// walks its retransmission schedule and lands on the first attempt that
// is neither lost nor severed — so reliable control traffic resumes
// deterministically after the partition heals (or dies with the attempt
// budget if it never does).
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "fleet/membership.hpp"
#include "tensor/tensor.hpp"
#include "track/table.hpp"

namespace advh::fleet {

enum class msg_kind : std::uint8_t {
  heartbeat = 0,           ///< replica -> controller (best-effort)
  view_beacon = 1,         ///< controller -> replica (reliable)
  request = 2,             ///< router -> owner replica (best-effort)
  response = 3,            ///< replica -> router (best-effort)
  ban_announce = 4,        ///< replica -> everyone (reliable)
  checkpoint_announce = 5, ///< owner -> everyone (reliable)
  handoff_batch = 6,       ///< old owner -> new owner (reliable)
  canary_vote_request = 7, ///< alarmed owner -> live peers (reliable)
  canary_vote = 8,         ///< peer -> alarmed owner (reliable)
  stage_request = 9,       ///< owner -> validator peer (reliable)
  stage_result = 10,       ///< validator peer -> owner (reliable)
  leader_beacon = 11,      ///< leader -> controller peers (best-effort)
  leader_ack = 12,         ///< controller peer -> leader (best-effort)
  ballot_request = 13,     ///< candidate -> controller peers (reliable)
  ballot_grant = 14,       ///< voter -> candidate (reliable)
  digest_exchange = 15,    ///< replica -> ownership peer (best-effort)
  repair_request = 16,     ///< behind/corrupt replica -> peer (reliable)
  repair_announce = 17,    ///< repair source -> requester (reliable)
  ban_sync = 18,           ///< replica -> peer missing bans (reliable)
};

const char* to_string(msg_kind k) noexcept;

/// Terminal outcome of one routed fleet request. Every submitted request
/// lands in exactly one bucket; everything that is not `served_*` is
/// fail-closed (no verdict was produced, nothing was admitted as benign).
enum class req_outcome : std::uint8_t {
  served_clean = 0,
  served_flagged = 1,    ///< served; detector flagged adversarial/abstain
  shed = 2,              ///< owner admitted but shed (deadline)
  failed = 3,            ///< owner measurement backend failed
  rejected = 4,          ///< owner admission control rejected
  rejected_banned = 5,   ///< client is banned (router or owner)
  abstain_fenced = 6,    ///< owner was epoch-fenced; abstained fail-closed
  abstain_timeout = 7,   ///< no response within request_timeout
  abstain_no_owner = 8,  ///< no live owner under the current view
  abstain_corrupt = 9,   ///< owner's shard is checksum-fenced as corrupt
};

const char* to_string(req_outcome o) noexcept;

/// One leaf of an anti-entropy digest: the sender's view of one template
/// shard it holds (version/epoch of the applied content plus a CRC32C
/// over the canonical serialisation of the shard's models). `fenced`
/// marks a shard the sender holds but cannot vouch for (checksum-fenced
/// as corrupt) — peers treat it as infinitely stale.
struct shard_digest_entry {
  std::uint64_t shard = 0;
  std::uint64_t version = 0;
  std::uint64_t epoch = 0;
  std::uint32_t crc = 0;
  bool fenced = false;
};

/// One simulated message. A single fat struct instead of a closed class
/// hierarchy: the simulation copies messages through one queue and each
/// kind reads only its named fields. Unused fields stay default.
struct message {
  msg_kind kind = msg_kind::heartbeat;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t send_tick = 0;

  // request / response
  std::uint64_t req_id = 0;
  std::uint64_t client = 0;
  tensor input;
  req_outcome outcome = req_outcome::abstain_timeout;
  bool flagged = false;
  /// Request: routed to a non-primary owner after the primary went
  /// silent. Response: the verdict was produced by a non-primary owner
  /// and carries degraded confidence.
  bool speculative = false;
  bool degraded = false;

  // fencing / ownership context (request, response, checkpoint, votes)
  std::uint64_t epoch = 0;
  std::uint32_t range = 0;
  std::uint64_t shard = 0;

  // view_beacon
  membership_view view;
  /// Last heartbeat tick the controller acknowledged from the DESTINATION
  /// replica — the replica's lease clock (see controller::acked_heartbeat).
  std::uint64_t acked_hb = 0;

  // checkpoint_announce / stage_* — which detector content generation
  std::uint64_t content_version = 0;
  std::string path;
  bool ok = false;          ///< stage_result / ballot_grant verdict
  std::uint64_t ballot = 0; ///< canary vote round; election term for
                            ///< leader_beacon/leader_ack/ballot_*

  // handoff_batch
  std::vector<track::client_record> records;

  // digest_exchange: the sender's per-shard digests plus a digest of its
  // durable ban set (CRC over the sorted ids + the count), so one scrub
  // message covers both anti-entropy surfaces.
  std::vector<shard_digest_entry> digests;
  std::uint32_t ban_crc = 0;
  std::uint64_t ban_count = 0;

  // ban_sync: the sender's full sorted ban set (rate-bounded: at most one
  // per peer per scrub period).
  std::vector<std::uint64_t> bans;
};

struct net_stats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  /// Best-effort messages whose single attempt was lost.
  std::uint64_t lost = 0;
  /// Messages dropped at delivery because the destination was down.
  std::uint64_t dropped_dst_down = 0;
  /// Extra attempts reliable messages needed beyond the first.
  std::uint64_t retransmissions = 0;
  /// Send attempts severed by an active network partition.
  std::uint64_t severed = 0;
};

class fault_plan;

class sim_net {
 public:
  /// `plan` (optional) supplies the partition schedule: a send attempt
  /// between nodes the plan severs at that tick is lost. The plan must
  /// outlive the net.
  explicit sim_net(const fleet_config& cfg,
                   const fault_plan* plan = nullptr);

  /// Queues `m` at tick `now`, best-effort: one delivery attempt, lost
  /// with probability loss_rate.
  void send(message m, std::uint64_t now);

  /// Queues `m` at tick `now`, reliable: the at-send schedule walks
  /// retransmission attempts until one survives loss (the last attempt
  /// always does), so delivery is guaranteed but may be late.
  void send_reliable(message m, std::uint64_t now);

  /// Pops every message whose delivery tick is <= `tick`, in
  /// (deliver_tick, send sequence) order.
  std::vector<message> deliver_until(std::uint64_t tick);

  const net_stats& stats() const noexcept { return stats_; }

 private:
  struct pending {
    std::uint64_t deliver_tick;
    std::uint64_t seq;
    message msg;
  };
  struct later {
    bool operator()(const pending& a, const pending& b) const noexcept {
      if (a.deliver_tick != b.deliver_tick)
        return a.deliver_tick > b.deliver_tick;
      return a.seq > b.seq;
    }
  };

  std::uint64_t delay_for(std::uint64_t seq, std::uint64_t attempt) const;
  bool severed(std::uint32_t a, std::uint32_t b, std::uint64_t tick) const;

  const fleet_config& cfg_;
  const fault_plan* plan_ = nullptr;
  std::priority_queue<pending, std::vector<pending>, later> heap_;
  std::uint64_t seq_ = 0;
  net_stats stats_;
};

}  // namespace advh::fleet
