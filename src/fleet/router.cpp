#include "fleet/router.hpp"

#include "fleet/checkpoint.hpp"

namespace advh::fleet {

router::router(const fleet_config& cfg, const std::string& dir, sim_net& net,
               event_log& log)
    : cfg_(cfg), dir_(dir), net_(net), log_(log) {
  // The router starts with the genesis view, like the replicas: the fleet
  // is whole until the controller group says otherwise.
  view_.epoch = view_epoch(1, 1);
  for (std::size_t i = 0; i < cfg_.replicas; ++i) {
    view_.live.push_back(replica_node(i));
  }
}

void router::reload_ledgers() {
  // Checked reads: a torn or corrupt ledger contributes its verified
  // prefix instead of taking the router down with it — the bans the
  // damage swallowed come back via ban announces and replica ban_sync.
  for (std::size_t i = 0; i < cfg_.replicas; ++i) {
    const ban_ledger_read r =
        read_ban_ledger_checked(ban_ledger_path(dir_, replica_node(i)));
    for (const std::uint64_t c : r.clients) banned_.insert(c);
  }
}

void router::resolve(std::uint64_t tick, std::uint64_t req_id,
                     std::uint64_t client, req_outcome outcome, bool flagged,
                     std::uint32_t served_by, bool degraded) {
  log_.count(outcome);
  log_.line(tick, "req=" + std::to_string(req_id) +
                      " client=" + std::to_string(client) +
                      " outcome=" + to_string(outcome) +
                      " flagged=" + (flagged ? "1" : "0") +
                      " node=" + std::to_string(served_by) +
                      (degraded ? " conf=degraded" : ""));
}

std::uint64_t router::submit(std::uint64_t client, tensor input,
                             std::uint64_t tick) {
  const std::uint64_t req_id = next_req_id_++;
  ++log_.stats().submitted;
  if (banned_.count(client) != 0) {
    resolve(tick, req_id, client, req_outcome::rejected_banned, false, 0);
    return req_id;
  }
  const std::uint32_t range = range_of_client(client, cfg_);
  const auto owner = range_owner(view_, range);
  if (!owner.has_value()) {
    resolve(tick, req_id, client, req_outcome::abstain_no_owner, false, 0);
    return req_id;
  }
  message m;
  m.kind = msg_kind::request;
  m.src = kRouterNode;
  m.dst = *owner;
  m.req_id = req_id;
  m.client = client;
  m.input = input;  // the pending entry keeps a copy for speculation
  m.epoch = view_.epoch;
  m.range = range;
  net_.send(std::move(m), tick);
  pending_req p;
  p.client = client;
  p.deadline_tick = tick + cfg_.request_timeout;
  p.input = std::move(input);
  p.range = range;
  p.primary_dst = *owner;
  p.submitted = tick;
  pending_[req_id] = std::move(p);
  return req_id;
}

void router::enqueue(message m) { inbox_.push_back(std::move(m)); }

void router::drain_inbox(std::uint64_t tick) {
  std::vector<message> msgs;
  msgs.swap(inbox_);
  for (message& m : msgs) {
    switch (m.kind) {
      case msg_kind::view_beacon:
        if (m.view.epoch > view_.epoch) {
          view_ = m.view;
          // Bans decided by a replica that crashed before its announce
          // landed: the ledger survived; the view change is when the
          // router re-syncs from it.
          reload_ledgers();
        }
        break;
      case msg_kind::ban_announce:
        banned_.insert(m.client);
        break;
      case msg_kind::response: {
        // First response in network-delivery order wins — with a dual
        // route in flight the loser finds no pending entry and is
        // dropped, so a request still resolves exactly once.
        const auto it = pending_.find(m.req_id);
        if (it == pending_.end()) break;  // resolved or timed out: drop
        if (m.outcome == req_outcome::abstain_corrupt &&
            !it->second.speculated) {
          // The owner computed a verdict but its backing shard is
          // corrupt-fenced. Burn the one speculation shot NOW instead of
          // waiting for silence: a healthy secondary serves the request
          // degraded while anti-entropy repairs the primary. No
          // alternate slot -> fall through and resolve the abstain.
          it->second.speculated = true;
          if (speculate_one(m.req_id, it->second, m.src, tick)) break;
        }
        const std::uint64_t client = it->second.client;
        pending_.erase(it);
        resolve(tick, m.req_id, client, m.outcome, m.flagged, m.src,
                m.degraded);
        break;
      }
      default:
        break;
    }
  }
}

bool router::speculate_one(std::uint64_t req_id, pending_req& p,
                           std::uint32_t avoid, std::uint64_t tick) {
  for (std::uint32_t k = 0; k < cfg_.replication; ++k) {
    const auto owner = range_owner_k(view_, p.range, k);
    if (!owner.has_value()) break;  // fewer live replicas than slots
    if (*owner == avoid) continue;
    message m;
    m.kind = msg_kind::request;
    m.src = kRouterNode;
    m.dst = *owner;
    m.req_id = req_id;
    m.client = p.client;
    m.input = p.input;
    m.epoch = view_.epoch;
    m.range = p.range;
    m.speculative = true;
    net_.send(std::move(m), tick);
    ++log_.stats().speculative_routes;
    log_.line(tick, "speculate req=" + std::to_string(req_id) +
                        " node=" + std::to_string(*owner));
    return true;
  }
  return false;
}

void router::speculate(std::uint64_t tick) {
  // One speculative re-send per request, after `speculate_after` ticks of
  // primary silence, to the first ownership slot of the range (under the
  // router's CURRENT view — the primary may already have been declared
  // dead) that is not the node originally tried. Stamped with the current
  // epoch and the speculative flag, so a non-primary slot will serve it
  // (tagged degraded) instead of abstaining. std::map iteration gives
  // request-id order — deterministic at any thread count.
  for (auto& [req_id, p] : pending_) {
    if (p.speculated || tick < p.submitted + cfg_.speculate_after) continue;
    p.speculated = true;  // one shot, even when no alternate slot exists
    speculate_one(req_id, p, p.primary_dst, tick);
  }
}

void router::on_tick(std::uint64_t tick) {
  speculate(tick);
  std::vector<std::uint64_t> expired;
  for (const auto& [req_id, p] : pending_) {
    if (p.deadline_tick <= tick) expired.push_back(req_id);
  }
  for (const std::uint64_t req_id : expired) {
    const std::uint64_t client = pending_[req_id].client;
    pending_.erase(req_id);
    resolve(tick, req_id, client, req_outcome::abstain_timeout, false, 0);
  }
}

}  // namespace advh::fleet
