// Seeded fault plan: the chaos schedule of a fleet simulation.
//
// Faults are *data*, not code paths: a fault_plan is a sorted list of
// (tick, kind, target, index) events — crashes, recoveries, stalls,
// unstalls, against workers or controllers — either scripted explicitly
// (failover scenarios with known kill times) or generated from a seed and
// a rate (chaos sweeps). Because the plan is fixed before the run starts,
// fault injection cannot observe simulation state, which is what keeps a
// chaotic run bitwise identical at any thread count.
//
// Network partitions are part of the plan too: a partition is a symmetric
// split of node ids into groups over a tick interval — two nodes in
// different groups (a node listed in no group forms the implicit "rest"
// group) cannot exchange messages while the partition is active. The sim
// net consults `severed()` at send time, so partitions compose with the
// at-send delivery model without any new runtime machinery.
//
// The plan also owns the recalibration *poison* seam: `poisoned(shard,
// version)` deterministically marks a staged checkpoint as failing canary
// validation, driving the rollback path in tests and the failover bench
// without corrupting real files.
#pragma once

#include <cstdint>
#include <vector>

#include "fleet/config.hpp"

namespace advh::fleet {

enum class fault_kind : std::uint8_t {
  crash = 0,    ///< node loses volatile state; disk survives
  recover = 1,  ///< node reboots from its durable artifacts
  stall = 2,    ///< node freezes: inbox buffers, nothing processes
  unstall = 3,  ///< node resumes, processing its buffered inbox
};

const char* to_string(fault_kind k) noexcept;

/// What a fault event targets: a worker replica or a controller.
enum class fault_target : std::uint8_t {
  worker = 0,
  controller = 1,
};

const char* to_string(fault_target t) noexcept;

/// Disk-corruption fault kinds. All three model real failure modes the
/// checksum layer must catch: a rotted sector (bit flip), a torn write
/// that the rename ordering cannot see because it hit the file after
/// publication (truncate), and a misbehaving storage layer serving back
/// an old, checksum-VALID generation of the file (stale resurrect — only
/// anti-entropy version digests catch this one).
enum class corrupt_kind : std::uint8_t {
  bit_flip = 0,
  truncate = 1,
  stale_resurrect = 2,
};

const char* to_string(corrupt_kind k) noexcept;

/// Which durable artifact of the targeted replica the corruption hits.
enum class corrupt_target : std::uint8_t {
  shard_file = 0,   ///< the replica's shard<S>_latest.adet
  ledger_file = 1,  ///< the replica's bans_r<node>.advhbans
};

const char* to_string(corrupt_target t) noexcept;

struct corruption_event {
  std::uint64_t tick = 0;
  corrupt_kind kind = corrupt_kind::bit_flip;
  corrupt_target target = corrupt_target::shard_file;
  std::size_t replica = 0;  ///< replica INDEX whose directory is hit
  std::uint64_t shard = 0;  ///< shard index (shard_file targets only)
  std::uint64_t seed = 0;   ///< per-event seed (which bit / where to cut)
};

struct fault_event {
  std::uint64_t tick = 0;
  fault_kind kind = fault_kind::crash;
  std::size_t replica = 0;  ///< replica or controller INDEX (not node id)
  fault_target target = fault_target::worker;
};

/// Symmetric network partition over [from, until): nodes in different
/// groups cannot exchange messages while it is active.
struct partition_spec {
  std::uint64_t from = 0;
  std::uint64_t until = 0;
  std::vector<std::vector<std::uint32_t>> groups;
};

class fault_plan {
 public:
  fault_plan() = default;

  /// Scripted plan: `events` need not be sorted; they are ordered by
  /// (tick, target, index, kind) so two scripts listing the same events
  /// replay identically.
  explicit fault_plan(std::vector<fault_event> events);

  /// Seeded chaos plan over `horizon` ticks: each replica independently
  /// draws crash/stall episodes at `rate` per tick (bounded episode
  /// lengths), leaving at least one replica untouched per episode window
  /// so the fleet always has a survivor to fail over to.
  static fault_plan chaos(const fleet_config& cfg, std::uint64_t horizon,
                          double rate, std::uint64_t seed);

  /// Events scheduled exactly at `tick`, in deterministic order.
  std::vector<fault_event> at(std::uint64_t tick) const;

  const std::vector<fault_event>& events() const noexcept { return events_; }

  /// Schedules a symmetric partition of `groups` over [from, until). A
  /// node id appearing in no group belongs to the implicit rest group.
  void partition(std::uint64_t from, std::uint64_t until,
                 std::vector<std::vector<std::uint32_t>> groups);

  /// True when an active partition puts `a` and `b` in different groups
  /// at `tick` — the edge is severed in both directions.
  bool severed(std::uint32_t a, std::uint32_t b, std::uint64_t tick) const;

  const std::vector<partition_spec>& partitions() const noexcept {
    return partitions_;
  }

  /// Marks staged recalibration checkpoint (shard, content_version) as
  /// poisoned: canary validation must fail it and the rollout must roll
  /// back. Deterministic in (seed, shard, version).
  void poison(std::uint64_t shard, std::uint64_t content_version);
  bool poisoned(std::uint64_t shard, std::uint64_t content_version) const;

  /// Schedules one disk-corruption event (scripted scenarios).
  void corrupt(corruption_event e);

  /// Corruption events scheduled exactly at `tick`, in deterministic
  /// (replica, target, shard, kind) order.
  std::vector<corruption_event> corruptions_at(std::uint64_t tick) const;

  const std::vector<corruption_event>& corruptions() const noexcept {
    return corruptions_;
  }

  /// Seeds corruption chaos over `horizon` ticks on top of whatever the
  /// plan already schedules: every (replica, artifact) pair walks the
  /// tick line and fires a corruption with probability `rate` per
  /// opportunity (opportunities are spaced a checkpoint interval apart so
  /// a fresh file exists to corrupt), with the kind drawn uniformly.
  /// Events land only in the first ~60% of the horizon so every
  /// corruption has a convergence tail to repair within. Deterministic in
  /// (cfg, horizon, rate, seed).
  void add_corruption_chaos(const fleet_config& cfg, std::uint64_t horizon,
                            double rate, std::uint64_t seed);

  /// Schedules a digest blackout over [from, until): replicas suppress
  /// their anti-entropy digest sends while one is active (the scripted
  /// flavour of digest-message loss; random loss comes from loss_rate
  /// since digests travel best-effort).
  void digest_blackout(std::uint64_t from, std::uint64_t until);
  bool digest_blackout_at(std::uint64_t tick) const;

 private:
  std::vector<fault_event> events_;  ///< sorted by (tick, target, idx, kind)
  std::vector<partition_spec> partitions_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> poisoned_;
  /// Sorted by (tick, replica, target, shard, kind).
  std::vector<corruption_event> corruptions_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> digest_blackouts_;
};

}  // namespace advh::fleet
