// Seeded fault plan: the chaos schedule of a fleet simulation.
//
// Faults are *data*, not code paths: a fault_plan is a sorted list of
// (tick, kind, replica) events — crashes, recoveries, stalls, unstalls —
// either scripted explicitly (failover scenarios with known kill times)
// or generated from a seed and a rate (chaos sweeps). Because the plan is
// fixed before the run starts, fault injection cannot observe simulation
// state, which is what keeps a chaotic run bitwise identical at any
// thread count.
//
// The plan also owns the recalibration *poison* seam: `poisoned(shard,
// version)` deterministically marks a staged checkpoint as failing canary
// validation, driving the rollback path in tests and the failover bench
// without corrupting real files.
#pragma once

#include <cstdint>
#include <vector>

#include "fleet/config.hpp"

namespace advh::fleet {

enum class fault_kind : std::uint8_t {
  crash = 0,    ///< replica loses volatile state; disk survives
  recover = 1,  ///< replica reboots from its checkpoints + ban ledgers
  stall = 2,    ///< replica freezes: inbox buffers, nothing processes
  unstall = 3,  ///< replica resumes, processing its buffered inbox
};

const char* to_string(fault_kind k) noexcept;

struct fault_event {
  std::uint64_t tick = 0;
  fault_kind kind = fault_kind::crash;
  std::size_t replica = 0;  ///< replica index (not node id)
};

class fault_plan {
 public:
  fault_plan() = default;

  /// Scripted plan: `events` need not be sorted; they are ordered by
  /// (tick, replica, kind) so two scripts listing the same events replay
  /// identically.
  explicit fault_plan(std::vector<fault_event> events);

  /// Seeded chaos plan over `horizon` ticks: each replica independently
  /// draws crash/stall episodes at `rate` per tick (bounded episode
  /// lengths), leaving at least one replica untouched per episode window
  /// so the fleet always has a survivor to fail over to.
  static fault_plan chaos(const fleet_config& cfg, std::uint64_t horizon,
                          double rate, std::uint64_t seed);

  /// Events scheduled exactly at `tick`, in deterministic order.
  std::vector<fault_event> at(std::uint64_t tick) const;

  const std::vector<fault_event>& events() const noexcept { return events_; }

  /// Marks staged recalibration checkpoint (shard, content_version) as
  /// poisoned: canary validation must fail it and the rollout must roll
  /// back. Deterministic in (seed, shard, version).
  void poison(std::uint64_t shard, std::uint64_t content_version);
  bool poisoned(std::uint64_t shard, std::uint64_t content_version) const;

 private:
  std::vector<fault_event> events_;  ///< sorted by (tick, replica, kind)
  std::vector<std::pair<std::uint64_t, std::uint64_t>> poisoned_;
};

}  // namespace advh::fleet
