#include "fleet/corruption.hpp"

#include <filesystem>
#include <fstream>
#include <optional>

#include "common/error.hpp"
#include "common/fs.hpp"
#include "common/rng.hpp"
#include "fleet/checkpoint.hpp"
#include "fleet/membership.hpp"

namespace advh::fleet {

namespace {

namespace fs = std::filesystem;

/// Plain in-place overwrite — deliberately NOT atomic_write_file: the
/// whole point is to model bytes changing underneath the durability
/// machinery, not a well-behaved republish.
void overwrite_raw(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// The lowest-version immutable snapshot of `shard` in `dir`, if any —
/// what a misbehaving storage layer would resurrect.
std::optional<std::string> oldest_snapshot(const std::string& dir,
                                           std::uint64_t shard) {
  const std::string prefix = "shard" + std::to_string(shard) + "_v";
  std::optional<std::uint64_t> best_version;
  std::optional<std::string> best_path;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    if (name.size() < prefix.size() + 6 ||
        name.substr(name.size() - 5) != ".adet") {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - 5);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    const std::uint64_t v = std::stoull(digits);
    if (!best_version.has_value() || v < *best_version) {
      best_version = v;
      best_path = entry.path().string();
    }
  }
  return best_path;
}

bool damage_file(const corruption_event& e, const std::string& dir,
                 const std::string& path) {
  if (!fs::exists(path)) return false;
  switch (e.kind) {
    case corrupt_kind::bit_flip: {
      std::string bytes = read_file_bytes(path);
      if (bytes.empty()) return false;
      rng g = rng::stream(e.seed, 0);
      const std::size_t bit = g.uniform_index(bytes.size() * 8);
      bytes[bit / 8] = static_cast<char>(
          static_cast<unsigned char>(bytes[bit / 8]) ^ (1u << (bit % 8)));
      overwrite_raw(path, bytes);
      return true;
    }
    case corrupt_kind::truncate: {
      std::error_code ec;
      const auto size = fs::file_size(path, ec);
      if (ec || size == 0) return false;
      rng g = rng::stream(e.seed, 1);
      const std::uint64_t keep = g.uniform_index(static_cast<std::size_t>(size));
      fs::resize_file(path, keep, ec);
      return !ec;
    }
    case corrupt_kind::stale_resurrect: {
      if (e.target == corrupt_target::shard_file) {
        const auto old = oldest_snapshot(dir, e.shard);
        if (!old.has_value() || *old == path) return false;
        std::error_code ec;
        fs::copy_file(*old, path, fs::copy_options::overwrite_existing, ec);
        return !ec;
      }
      // Ledger: rewrite with the first half of the records — valid
      // framing and checksums, stale content (lost ban decisions).
      const ban_ledger_read r = read_ban_ledger_checked(path);
      if (r.header_corrupt || r.clients.size() < 2) return false;
      std::vector<std::uint64_t> half(
          r.clients.begin(), r.clients.begin() + r.clients.size() / 2);
      write_ban_ledger(path, half);
      return true;
    }
  }
  return false;
}

}  // namespace

bool apply_corruption(const corruption_event& e, const fleet_config& cfg,
                      const std::string& dir, event_log& log) {
  const std::string path =
      e.target == corrupt_target::shard_file
          ? shard_latest_path(dir, e.shard)
          : ban_ledger_path(dir, replica_node(e.replica));
  bool applied = false;
  try {
    applied = damage_file(e, dir, path);
  } catch (const io_error&) {
    applied = false;  // racing reads/renames in the store: nothing damaged
  }
  if (!applied) return false;
  (void)cfg;
  ++log.stats().corrupt_faults;
  log.line(e.tick,
           std::string("corrupt kind=") + to_string(e.kind) +
               " target=" + to_string(e.target) +
               (e.target == corrupt_target::shard_file
                    ? " shard=" + std::to_string(e.shard)
                    : " node=" + std::to_string(replica_node(e.replica))));
  return true;
}

}  // namespace advh::fleet
