#include "fleet/net.hpp"

#include "common/rng.hpp"
#include "fleet/fault_plan.hpp"

namespace advh::fleet {

namespace {

/// Salt separating the loss stream from the delay stream of one message.
constexpr std::uint64_t kLossSalt = 0x10551055ULL;
constexpr std::uint64_t kDelaySalt = 0xde1a9de1ULL;

/// Retransmission attempts a reliable message may need; the last attempt
/// always survives, bounding worst-case reliable latency at
/// 64 * retransmit + max_delay ticks.
constexpr std::uint64_t kMaxAttempts = 64;

}  // namespace

const char* to_string(msg_kind k) noexcept {
  switch (k) {
    case msg_kind::heartbeat:
      return "heartbeat";
    case msg_kind::view_beacon:
      return "view_beacon";
    case msg_kind::request:
      return "request";
    case msg_kind::response:
      return "response";
    case msg_kind::ban_announce:
      return "ban_announce";
    case msg_kind::checkpoint_announce:
      return "checkpoint_announce";
    case msg_kind::handoff_batch:
      return "handoff_batch";
    case msg_kind::canary_vote_request:
      return "canary_vote_request";
    case msg_kind::canary_vote:
      return "canary_vote";
    case msg_kind::stage_request:
      return "stage_request";
    case msg_kind::stage_result:
      return "stage_result";
    case msg_kind::leader_beacon:
      return "leader_beacon";
    case msg_kind::leader_ack:
      return "leader_ack";
    case msg_kind::ballot_request:
      return "ballot_request";
    case msg_kind::ballot_grant:
      return "ballot_grant";
    case msg_kind::digest_exchange:
      return "digest_exchange";
    case msg_kind::repair_request:
      return "repair_request";
    case msg_kind::repair_announce:
      return "repair_announce";
    case msg_kind::ban_sync:
      return "ban_sync";
  }
  return "?";
}

const char* to_string(req_outcome o) noexcept {
  switch (o) {
    case req_outcome::served_clean:
      return "served_clean";
    case req_outcome::served_flagged:
      return "served_flagged";
    case req_outcome::shed:
      return "shed";
    case req_outcome::failed:
      return "failed";
    case req_outcome::rejected:
      return "rejected";
    case req_outcome::rejected_banned:
      return "rejected_banned";
    case req_outcome::abstain_fenced:
      return "abstain_fenced";
    case req_outcome::abstain_timeout:
      return "abstain_timeout";
    case req_outcome::abstain_no_owner:
      return "abstain_no_owner";
    case req_outcome::abstain_corrupt:
      return "abstain_corrupt";
  }
  return "?";
}

sim_net::sim_net(const fleet_config& cfg, const fault_plan* plan)
    : cfg_(cfg), plan_(plan) {}

bool sim_net::severed(std::uint32_t a, std::uint32_t b,
                      std::uint64_t tick) const {
  return plan_ != nullptr && plan_->severed(a, b, tick);
}

std::uint64_t sim_net::delay_for(std::uint64_t seq,
                                 std::uint64_t attempt) const {
  if (cfg_.max_delay == cfg_.min_delay) return cfg_.min_delay;
  rng g = rng::stream(cfg_.seed ^ kDelaySalt, seq * 131 + attempt);
  return cfg_.min_delay +
         g.uniform_index(cfg_.max_delay - cfg_.min_delay + 1);
}

void sim_net::send(message m, std::uint64_t now) {
  const std::uint64_t seq = seq_++;
  ++stats_.sent;
  m.send_tick = now;
  if (severed(m.src, m.dst, now)) {
    ++stats_.severed;
    ++stats_.lost;
    return;
  }
  rng loss = rng::stream(cfg_.seed ^ kLossSalt, seq * 97);
  if (cfg_.loss_rate > 0.0 && loss.bernoulli(cfg_.loss_rate)) {
    ++stats_.lost;
    return;
  }
  heap_.push(pending{now + delay_for(seq, 0), seq, std::move(m)});
}

void sim_net::send_reliable(message m, std::uint64_t now) {
  const std::uint64_t seq = seq_++;
  ++stats_.sent;
  m.send_tick = now;
  // The whole retransmission future is decided here: attempt k (at tick
  // now + k * retransmit) is lost with an independent draw, or severed
  // outright when an active partition cuts the edge at that tick; the
  // first survivor sets the delivery tick. The final attempt is exempt
  // from the loss draw — but NOT from partitions — so reliable traffic
  // always lands unless the partition outlives the whole attempt budget,
  // and resumes deterministically right after a heal.
  std::uint64_t attempt = 0;
  bool survived = false;
  for (; attempt < kMaxAttempts; ++attempt) {
    if (severed(m.src, m.dst, now + attempt * cfg_.retransmit)) {
      ++stats_.severed;
      continue;
    }
    if (attempt + 1 == kMaxAttempts) {
      survived = true;
      break;
    }
    rng loss = rng::stream(cfg_.seed ^ kLossSalt, seq * 97 + attempt);
    if (!(cfg_.loss_rate > 0.0 && loss.bernoulli(cfg_.loss_rate))) {
      survived = true;
      break;
    }
  }
  stats_.retransmissions += attempt;
  if (!survived) {
    ++stats_.lost;
    return;
  }
  heap_.push(pending{now + attempt * cfg_.retransmit + delay_for(seq, attempt),
                     seq, std::move(m)});
}

std::vector<message> sim_net::deliver_until(std::uint64_t tick) {
  std::vector<message> out;
  while (!heap_.empty() && heap_.top().deliver_tick <= tick) {
    out.push_back(std::move(const_cast<pending&>(heap_.top()).msg));
    heap_.pop();
    ++stats_.delivered;
  }
  return out;
}

}  // namespace advh::fleet
