#include "fleet/integrity.hpp"

#include <cstring>
#include <filesystem>

#include "common/error.hpp"
#include "common/fs.hpp"
#include "fleet/membership.hpp"

namespace advh::fleet {

namespace {

constexpr std::uint32_t kCkTrailerMagic = 0x4144434B;  // "ADCK"

template <typename T>
void append_le(std::string& buf, T v) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  buf.append(bytes, sizeof(T));
}

}  // namespace

std::uint32_t shard_content_digest(
    const std::vector<std::vector<std::optional<core::event_model>>>& models,
    std::uint64_t shard, const fleet_config& cfg) {
  std::string buf;
  for (std::size_t cls = 0; cls < models.size(); ++cls) {
    if (shard_of_class(cls, cfg) != shard) continue;
    append_le(buf, static_cast<std::uint64_t>(cls));
    for (const auto& em : models[cls]) {
      append_le(buf, static_cast<std::uint8_t>(em.has_value() ? 1 : 0));
      if (!em.has_value()) continue;
      append_le(buf, em->threshold);
      append_le(buf, em->nll_mean);
      append_le(buf, em->nll_stddev);
      append_le(buf, static_cast<std::uint64_t>(em->template_size));
      append_le(buf, static_cast<std::uint64_t>(em->model.order()));
      for (const auto& comp : em->model.components()) {
        append_le(buf, comp.weight);
        append_le(buf, comp.mean);
        append_le(buf, comp.variance);
      }
    }
  }
  return crc32c(buf);
}

std::uint32_t ban_set_digest(const std::set<std::uint64_t>& bans) {
  std::string buf;
  buf.reserve(8 + bans.size() * 8);
  append_le(buf, static_cast<std::uint64_t>(bans.size()));
  for (const std::uint64_t c : bans) append_le(buf, c);
  return crc32c(buf);
}

std::uint32_t digest_root(std::vector<std::uint32_t> leaves) {
  if (leaves.empty()) return 0;
  while (leaves.size() > 1) {
    std::vector<std::uint32_t> next;
    next.reserve((leaves.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < leaves.size(); i += 2) {
      std::string pair;
      append_le(pair, leaves[i]);
      append_le(pair, leaves[i + 1]);
      next.push_back(crc32c(pair));
    }
    if (leaves.size() % 2 == 1) next.push_back(leaves.back());
    leaves = std::move(next);
  }
  return leaves.front();
}

bool verify_checkpoint_file(const std::string& path) {
  if (!std::filesystem::exists(path)) return false;
  std::string bytes;
  try {
    bytes = read_file_bytes(path);
  } catch (const io_error&) {
    return false;
  }
  if (bytes.size() < 8) return false;
  std::uint32_t magic = 0;
  std::uint32_t crc = 0;
  std::memcpy(&magic, bytes.data() + bytes.size() - 8, 4);
  std::memcpy(&crc, bytes.data() + bytes.size() - 4, 4);
  if (magic != kCkTrailerMagic) return false;
  return crc32c(std::string_view(bytes).substr(0, bytes.size() - 8)) == crc;
}

}  // namespace advh::fleet
