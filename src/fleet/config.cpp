#include "fleet/config.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace advh::fleet {

namespace {

/// Strict parsing for the fleet env knobs, mirroring the convention of
/// serve::env_positive / track::env_positive_int: the whole string must
/// parse and the value must land in the stated range.
double env_number(const char* name, const char* value, double min_value,
                  double max_value) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0' || errno == ERANGE || !(v >= min_value) ||
      !(v <= max_value)) {
    throw std::invalid_argument(std::string(name) + "=\"" + value +
                                "\": expected a number in [" +
                                std::to_string(min_value) + ", " +
                                std::to_string(max_value) + "]");
  }
  return v;
}

std::size_t env_int(const char* name, const char* value, double min_value,
                    double max_value) {
  const double v = env_number(name, value, min_value, max_value);
  const auto n = static_cast<std::size_t>(v);
  if (static_cast<double>(n) != v) {
    throw std::invalid_argument(std::string(name) + "=\"" + value +
                                "\": expected an integer in [" +
                                std::to_string(min_value) + ", " +
                                std::to_string(max_value) + "]");
  }
  return n;
}

}  // namespace

fleet_config fleet_config_from_env(fleet_config base) {
  if (const char* env = std::getenv("ADVH_FLEET_REPLICAS")) {
    base.replicas = env_int("ADVH_FLEET_REPLICAS", env, 1.0, 64.0);
  }
  if (const char* env = std::getenv("ADVH_FLEET_CONTROLLERS")) {
    base.controllers = env_int("ADVH_FLEET_CONTROLLERS", env, 1.0, 7.0);
  }
  if (const char* env = std::getenv("ADVH_FLEET_REPLICATION")) {
    base.replication = static_cast<std::uint32_t>(
        env_int("ADVH_FLEET_REPLICATION", env, 1.0, 4.0));
  }
  if (const char* env = std::getenv("ADVH_FLEET_LOSS_RATE")) {
    base.loss_rate = env_number("ADVH_FLEET_LOSS_RATE", env, 0.0, 0.95);
  }
  if (const char* env = std::getenv("ADVH_FLEET_SCRUB_PERIOD")) {
    base.scrub_period = static_cast<std::uint64_t>(
        env_int("ADVH_FLEET_SCRUB_PERIOD", env, 1.0, 1000000.0));
  }
  if (const char* env = std::getenv("ADVH_FLEET_CORRUPT_RATE")) {
    base.corrupt_rate = env_number("ADVH_FLEET_CORRUPT_RATE", env, 0.0, 0.5);
  }
  return base;
}

void validate(const fleet_config& cfg) {
  const auto fail = [](const std::string& msg) {
    throw std::invalid_argument("fleet config: " + msg);
  };
  if (cfg.replicas < 1 || cfg.replicas > 64) {
    fail("replicas must lie in [1, 64]");
  }
  if (cfg.controllers < 1 || cfg.controllers > 7) {
    fail("controllers must lie in [1, 7]");
  }
  if (cfg.replication < 1 || cfg.replication > 4) {
    fail("replication must lie in [1, 4]");
  }
  if (cfg.class_shards < 1) fail("class_shards must be positive");
  if (cfg.ring_ranges < 1) fail("ring_ranges must be positive");
  if (cfg.tick.count() <= 0) fail("tick must be positive");
  if (cfg.hb_interval < 1) fail("hb_interval must be positive");
  if (cfg.retransmit < 1) fail("retransmit must be positive");
  if (cfg.min_delay > cfg.max_delay) fail("min_delay must be <= max_delay");
  if (!(cfg.loss_rate >= 0.0) || cfg.loss_rate > 0.95) {
    fail("loss_rate must lie in [0, 0.95]");
  }
  if (cfg.handoff_batch < 1) fail("handoff_batch must be positive");
  if (cfg.scrub_period < 1) fail("scrub_period must be positive");
  if (cfg.repair_batch < 1) fail("repair_batch must be positive");
  if (!(cfg.corrupt_rate >= 0.0) || cfg.corrupt_rate > 0.5) {
    fail("corrupt_rate must lie in [0, 0.5]");
  }
  if (cfg.canary_interval < 1) fail("canary_interval must be positive");
  if (cfg.checkpoint_interval < 1) {
    fail("checkpoint_interval must be positive");
  }
  if (cfg.request_timeout <= cfg.max_delay) {
    fail("request_timeout must exceed max_delay (a request needs time to "
         "arrive before the router abstains)");
  }
  if (cfg.speculate_after < 1 || cfg.speculate_after >= cfg.request_timeout) {
    fail("speculate_after must lie in [1, request_timeout): the secondary "
         "needs time to respond before the router abstains");
  }
  // The split-brain safety condition. See the header comment: a stale
  // owner must be self-fenced strictly before the controller can have
  // reassigned its ranges.
  if (cfg.lease + cfg.max_delay >= cfg.failure_timeout) {
    fail("split-brain hazard: lease + max_delay must be < failure_timeout "
         "(a stale replica must fence itself before its shards can be "
         "reassigned)");
  }
  // The controller-side mirror of the same condition: a deposed leader's
  // lease (plus any beacon still in flight) must have run out before a
  // successor could have been elected and started publishing views.
  if (cfg.ctl_lease + cfg.max_delay >= cfg.ctl_failure_timeout) {
    fail("split-brain hazard: ctl_lease + max_delay must be < "
         "ctl_failure_timeout (a deposed leader must lose its lease "
         "before a successor can start acting)");
  }
}

}  // namespace advh::fleet
