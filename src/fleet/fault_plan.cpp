#include "fleet/fault_plan.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace advh::fleet {

namespace {

bool event_order(const fault_event& a, const fault_event& b) noexcept {
  if (a.tick != b.tick) return a.tick < b.tick;
  if (a.target != b.target)
    return static_cast<int>(a.target) < static_cast<int>(b.target);
  if (a.replica != b.replica) return a.replica < b.replica;
  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
}

bool corruption_order(const corruption_event& a,
                      const corruption_event& b) noexcept {
  if (a.tick != b.tick) return a.tick < b.tick;
  if (a.replica != b.replica) return a.replica < b.replica;
  if (a.target != b.target)
    return static_cast<int>(a.target) < static_cast<int>(b.target);
  if (a.shard != b.shard) return a.shard < b.shard;
  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
}

/// Group index of `node` in `spec`; nodes listed nowhere share the
/// implicit rest group.
std::size_t group_of(const partition_spec& spec, std::uint32_t node) {
  for (std::size_t g = 0; g < spec.groups.size(); ++g) {
    for (const std::uint32_t n : spec.groups[g]) {
      if (n == node) return g;
    }
  }
  return spec.groups.size();
}

}  // namespace

const char* to_string(fault_target t) noexcept {
  switch (t) {
    case fault_target::worker:
      return "worker";
    case fault_target::controller:
      return "controller";
  }
  return "?";
}

const char* to_string(corrupt_kind k) noexcept {
  switch (k) {
    case corrupt_kind::bit_flip:
      return "bit_flip";
    case corrupt_kind::truncate:
      return "truncate";
    case corrupt_kind::stale_resurrect:
      return "stale_resurrect";
  }
  return "?";
}

const char* to_string(corrupt_target t) noexcept {
  switch (t) {
    case corrupt_target::shard_file:
      return "shard_file";
    case corrupt_target::ledger_file:
      return "ledger_file";
  }
  return "?";
}

const char* to_string(fault_kind k) noexcept {
  switch (k) {
    case fault_kind::crash:
      return "crash";
    case fault_kind::recover:
      return "recover";
    case fault_kind::stall:
      return "stall";
    case fault_kind::unstall:
      return "unstall";
  }
  return "?";
}

fault_plan::fault_plan(std::vector<fault_event> events)
    : events_(std::move(events)) {
  std::sort(events_.begin(), events_.end(), event_order);
}

fault_plan fault_plan::chaos(const fleet_config& cfg, std::uint64_t horizon,
                             double rate, std::uint64_t seed) {
  std::vector<fault_event> events;
  if (cfg.replicas < 2 || rate <= 0.0) return fault_plan(std::move(events));
  // Replica 0 is the designated survivor: chaos never touches it, so the
  // fleet always has somewhere to fail over to and a chaotic run cannot
  // degenerate into "everyone dead, nothing to measure".
  for (std::size_t r = 1; r < cfg.replicas; ++r) {
    rng g = rng::stream(seed ^ 0xfa017ULL, r);
    std::uint64_t t = 1;
    while (t < horizon) {
      if (!g.bernoulli(rate)) {
        ++t;
        continue;
      }
      const bool is_crash = g.bernoulli(0.5);
      // Episode long enough for failure detection to fire, short enough
      // that several episodes fit a bench horizon.
      const std::uint64_t len =
          cfg.failure_timeout + 2 + g.uniform_index(cfg.failure_timeout + 1);
      events.push_back(
          {t, is_crash ? fault_kind::crash : fault_kind::stall, r});
      if (t + len < horizon) {
        events.push_back(
            {t + len, is_crash ? fault_kind::recover : fault_kind::unstall,
             r});
      }
      // Cool-down before the next episode so recovery completes.
      t += len + cfg.failure_timeout;
    }
  }
  return fault_plan(std::move(events));
}

std::vector<fault_event> fault_plan::at(std::uint64_t tick) const {
  std::vector<fault_event> out;
  auto it = std::lower_bound(
      events_.begin(), events_.end(), tick,
      [](const fault_event& e, std::uint64_t t) { return e.tick < t; });
  for (; it != events_.end() && it->tick == tick; ++it) out.push_back(*it);
  return out;
}

void fault_plan::partition(std::uint64_t from, std::uint64_t until,
                           std::vector<std::vector<std::uint32_t>> groups) {
  partitions_.push_back(partition_spec{from, until, std::move(groups)});
}

bool fault_plan::severed(std::uint32_t a, std::uint32_t b,
                         std::uint64_t tick) const {
  for (const partition_spec& p : partitions_) {
    if (tick < p.from || tick >= p.until) continue;
    if (group_of(p, a) != group_of(p, b)) return true;
  }
  return false;
}

void fault_plan::poison(std::uint64_t shard, std::uint64_t content_version) {
  poisoned_.emplace_back(shard, content_version);
}

bool fault_plan::poisoned(std::uint64_t shard,
                          std::uint64_t content_version) const {
  for (const auto& [s, v] : poisoned_) {
    if (s == shard && v == content_version) return true;
  }
  return false;
}

void fault_plan::corrupt(corruption_event e) {
  corruptions_.push_back(e);
  std::sort(corruptions_.begin(), corruptions_.end(), corruption_order);
}

std::vector<corruption_event> fault_plan::corruptions_at(
    std::uint64_t tick) const {
  std::vector<corruption_event> out;
  auto it = std::lower_bound(
      corruptions_.begin(), corruptions_.end(), tick,
      [](const corruption_event& e, std::uint64_t t) { return e.tick < t; });
  for (; it != corruptions_.end() && it->tick == tick; ++it) {
    out.push_back(*it);
  }
  return out;
}

void fault_plan::add_corruption_chaos(const fleet_config& cfg,
                                      std::uint64_t horizon, double rate,
                                      std::uint64_t seed) {
  if (rate <= 0.0 || cfg.replicas == 0) return;
  // Corruptions stop at ~60% of the horizon so every injected fault has
  // a repair tail: the acceptance gate measures convergence, which needs
  // quiet time after the last corruption to be meaningful.
  const std::uint64_t last = (horizon * 3) / 5;
  for (std::size_t r = 0; r < cfg.replicas; ++r) {
    for (int target = 0; target < 2; ++target) {
      rng g = rng::stream(seed ^ 0xc0442057ULL, r * 2 + target);
      // First opportunity only after the first checkpoint publish so a
      // file exists to corrupt; opportunities a checkpoint interval
      // apart give each corruption a fresh generation to hit.
      for (std::uint64_t t = cfg.checkpoint_interval + 2; t < last;
           t += cfg.checkpoint_interval) {
        if (!g.bernoulli(rate)) continue;
        corruption_event e;
        e.tick = t + g.uniform_index(cfg.checkpoint_interval / 2 + 1);
        e.kind = static_cast<corrupt_kind>(g.uniform_index(3));
        e.target = static_cast<corrupt_target>(target);
        e.replica = r;
        e.shard = g.uniform_index(cfg.class_shards);
        e.seed = seed ^ (e.tick * 0x9e3779b97f4a7c15ULL) ^ (r << 8) ^
                 static_cast<std::uint64_t>(target);
        corruptions_.push_back(e);
      }
    }
  }
  std::sort(corruptions_.begin(), corruptions_.end(), corruption_order);
}

void fault_plan::digest_blackout(std::uint64_t from, std::uint64_t until) {
  digest_blackouts_.emplace_back(from, until);
}

bool fault_plan::digest_blackout_at(std::uint64_t tick) const {
  for (const auto& [from, until] : digest_blackouts_) {
    if (tick >= from && tick < until) return true;
  }
  return false;
}

}  // namespace advh::fleet
