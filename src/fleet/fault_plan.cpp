#include "fleet/fault_plan.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace advh::fleet {

namespace {

bool event_order(const fault_event& a, const fault_event& b) noexcept {
  if (a.tick != b.tick) return a.tick < b.tick;
  if (a.target != b.target)
    return static_cast<int>(a.target) < static_cast<int>(b.target);
  if (a.replica != b.replica) return a.replica < b.replica;
  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
}

/// Group index of `node` in `spec`; nodes listed nowhere share the
/// implicit rest group.
std::size_t group_of(const partition_spec& spec, std::uint32_t node) {
  for (std::size_t g = 0; g < spec.groups.size(); ++g) {
    for (const std::uint32_t n : spec.groups[g]) {
      if (n == node) return g;
    }
  }
  return spec.groups.size();
}

}  // namespace

const char* to_string(fault_target t) noexcept {
  switch (t) {
    case fault_target::worker:
      return "worker";
    case fault_target::controller:
      return "controller";
  }
  return "?";
}

const char* to_string(fault_kind k) noexcept {
  switch (k) {
    case fault_kind::crash:
      return "crash";
    case fault_kind::recover:
      return "recover";
    case fault_kind::stall:
      return "stall";
    case fault_kind::unstall:
      return "unstall";
  }
  return "?";
}

fault_plan::fault_plan(std::vector<fault_event> events)
    : events_(std::move(events)) {
  std::sort(events_.begin(), events_.end(), event_order);
}

fault_plan fault_plan::chaos(const fleet_config& cfg, std::uint64_t horizon,
                             double rate, std::uint64_t seed) {
  std::vector<fault_event> events;
  if (cfg.replicas < 2 || rate <= 0.0) return fault_plan(std::move(events));
  // Replica 0 is the designated survivor: chaos never touches it, so the
  // fleet always has somewhere to fail over to and a chaotic run cannot
  // degenerate into "everyone dead, nothing to measure".
  for (std::size_t r = 1; r < cfg.replicas; ++r) {
    rng g = rng::stream(seed ^ 0xfa017ULL, r);
    std::uint64_t t = 1;
    while (t < horizon) {
      if (!g.bernoulli(rate)) {
        ++t;
        continue;
      }
      const bool is_crash = g.bernoulli(0.5);
      // Episode long enough for failure detection to fire, short enough
      // that several episodes fit a bench horizon.
      const std::uint64_t len =
          cfg.failure_timeout + 2 + g.uniform_index(cfg.failure_timeout + 1);
      events.push_back(
          {t, is_crash ? fault_kind::crash : fault_kind::stall, r});
      if (t + len < horizon) {
        events.push_back(
            {t + len, is_crash ? fault_kind::recover : fault_kind::unstall,
             r});
      }
      // Cool-down before the next episode so recovery completes.
      t += len + cfg.failure_timeout;
    }
  }
  return fault_plan(std::move(events));
}

std::vector<fault_event> fault_plan::at(std::uint64_t tick) const {
  std::vector<fault_event> out;
  auto it = std::lower_bound(
      events_.begin(), events_.end(), tick,
      [](const fault_event& e, std::uint64_t t) { return e.tick < t; });
  for (; it != events_.end() && it->tick == tick; ++it) out.push_back(*it);
  return out;
}

void fault_plan::partition(std::uint64_t from, std::uint64_t until,
                           std::vector<std::vector<std::uint32_t>> groups) {
  partitions_.push_back(partition_spec{from, until, std::move(groups)});
}

bool fault_plan::severed(std::uint32_t a, std::uint32_t b,
                         std::uint64_t tick) const {
  for (const partition_spec& p : partitions_) {
    if (tick < p.from || tick >= p.until) continue;
    if (group_of(p, a) != group_of(p, b)) return true;
  }
  return false;
}

void fault_plan::poison(std::uint64_t shard, std::uint64_t content_version) {
  poisoned_.emplace_back(shard, content_version);
}

bool fault_plan::poisoned(std::uint64_t shard,
                          std::uint64_t content_version) const {
  for (const auto& [s, v] : poisoned_) {
    if (s == shard && v == content_version) return true;
  }
  return false;
}

}  // namespace advh::fleet
