#include "nn/serialize.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "analysis/verifier.hpp"
#include "common/error.hpp"

namespace advh::nn {

namespace {
constexpr std::uint32_t kMagic = 0x41445648;  // "ADVH"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  ADVH_CHECK_MSG(is.good(), "truncated state file");
  return v;
}
}  // namespace

void save_state(model& m, const std::string& path) {
  std::vector<tensor*> state;
  m.net().collect_state(state);

  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream os(p, std::ios::binary);
  ADVH_CHECK_MSG(os.good(), "cannot open " + path + " for writing");

  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint64_t>(state.size()));
  for (tensor* t : state) {
    write_pod(os, static_cast<std::uint64_t>(t->numel()));
    os.write(reinterpret_cast<const char*>(t->data().data()),
             static_cast<std::streamsize>(t->numel() * sizeof(float)));
  }
  ADVH_CHECK_MSG(os.good(), "write failed for " + path);
}

void load_state(model& m, const std::string& path, bool verify) {
  std::vector<tensor*> state;
  m.net().collect_state(state);

  std::ifstream is(path, std::ios::binary);
  ADVH_CHECK_MSG(is.good(), "cannot open " + path);
  ADVH_CHECK_MSG(read_pod<std::uint32_t>(is) == kMagic,
                 path + " is not an AdvHunter state file");
  ADVH_CHECK_MSG(read_pod<std::uint32_t>(is) == kVersion,
                 path + ": unsupported version");
  const auto count = read_pod<std::uint64_t>(is);
  ADVH_CHECK_MSG(count == state.size(),
                 path + ": state tensor count mismatch (architecture drift?)");
  for (tensor* t : state) {
    const auto numel = read_pod<std::uint64_t>(is);
    ADVH_CHECK_MSG(numel == t->numel(), path + ": tensor size mismatch");
    is.read(reinterpret_cast<char*>(t->data().data()),
            static_cast<std::streamsize>(numel * sizeof(float)));
    ADVH_CHECK_MSG(is.good(), path + ": truncated payload");
  }
  if (verify) analysis::ensure_verified(m, path);
}

bool is_state_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return false;
  std::uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  return is.good() && magic == kMagic;
}

}  // namespace advh::nn
