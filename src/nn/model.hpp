// Top-level model wrapper: owns the layer graph and exposes the hard-label
// prediction interface the AdvHunter defender sees, plus the gradient
// interface the (white-box) adversary uses, plus trace capture for the
// HPC simulator backend.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/sequential.hpp"

namespace advh::nn {

class model {
 public:
  /// `input` is the CHW shape of one example, `classes` the logit width.
  model(std::string name, std::unique_ptr<sequential> net, shape input,
        std::size_t classes);

  const std::string& name() const noexcept { return name_; }
  const shape& input_shape() const noexcept { return input_; }
  std::size_t num_classes() const noexcept { return classes_; }

  /// Forward pass, explicit context (training / tracing).
  tensor forward(const tensor& x, forward_ctx& ctx);

  /// Inference-mode forward.
  tensor forward(const tensor& x);

  /// Gradient of the current cached forward pass w.r.t. its input.
  tensor backward(const tensor& grad_logits);

  /// Hard-label prediction for a batch (N, C, H, W) -> class per row.
  std::vector<std::size_t> predict(const tensor& x);

  /// Hard-label prediction for a single example (batch of one).
  std::size_t predict_one(const tensor& x);

  /// Runs one single-example inference with data-flow tracing enabled.
  /// Returns the trace; the hard-label prediction lands in `predicted`.
  inference_trace trace_inference(const tensor& x, std::size_t& predicted);

  /// Classification accuracy over a labelled batch.
  double accuracy(const tensor& x, const std::vector<std::size_t>& labels);

  std::vector<parameter*> params();
  std::size_t param_count();
  void zero_grad();

  sequential& net() noexcept { return *net_; }

  /// Total parameter bytes; the simulator sizes the model's address space
  /// from this.
  std::size_t param_bytes();

 private:
  std::string name_;
  std::unique_ptr<sequential> net_;
  shape input_;
  std::size_t classes_;
};

}  // namespace advh::nn
