// Softmax cross-entropy loss with logits.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace advh::nn {

struct loss_result {
  double value = 0.0;   ///< mean loss over the batch
  tensor grad_logits;   ///< d loss / d logits, already divided by batch size
};

/// Computes mean cross-entropy of rank-2 logits (batch, classes) against
/// integer labels, and its gradient w.r.t. the logits.
loss_result softmax_cross_entropy(const tensor& logits,
                                  const std::vector<std::size_t>& labels);

/// Cross-entropy gradient for a *single* example towards maximising the
/// logit of `target` (used by targeted attacks): returns d(-log p_target)/d logits.
tensor nll_grad_single(const tensor& logits, std::size_t target);

}  // namespace advh::nn
