#include "nn/model.hpp"

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace advh::nn {

model::model(std::string name, std::unique_ptr<sequential> net, shape input,
             std::size_t classes)
    : name_(std::move(name)),
      net_(std::move(net)),
      input_(input),
      classes_(classes) {
  ADVH_CHECK(net_ != nullptr);
  ADVH_CHECK(input_.rank() == 3);
  ADVH_CHECK(classes_ > 1);
}

tensor model::forward(const tensor& x, forward_ctx& ctx) {
  ADVH_CHECK_MSG(x.dims().rank() == 4, "model expects NCHW input");
  ADVH_CHECK_MSG(x.dims()[1] == input_[0] && x.dims()[2] == input_[1] &&
                     x.dims()[3] == input_[2],
                 name_ + ": input shape mismatch, want CHW " +
                     input_.to_string() + " got " + x.dims().to_string());
  return net_->forward(x, ctx);
}

tensor model::forward(const tensor& x) {
  forward_ctx ctx;
  ctx.grad = false;  // inference-only: leave no backward caches behind
  return forward(x, ctx);
}

tensor model::backward(const tensor& grad_logits) {
  return net_->backward(grad_logits);
}

std::vector<std::size_t> model::predict(const tensor& x) {
  return ops::argmax_rows(forward(x));
}

std::size_t model::predict_one(const tensor& x) {
  ADVH_CHECK(x.dims().rank() == 4 && x.dims()[0] == 1);
  return predict(x)[0];
}

inference_trace model::trace_inference(const tensor& x,
                                       std::size_t& predicted) {
  ADVH_CHECK_MSG(x.dims().rank() == 4 && x.dims()[0] == 1,
                 "trace_inference takes a single example");
  inference_trace trace;
  forward_ctx ctx;
  ctx.grad = false;  // tracing is read-only so a shared model stays
                     // safe under concurrent trace_inference calls
  ctx.trace = &trace;
  tensor logits = forward(x, ctx);
  predicted = ops::argmax(logits);
  return trace;
}

double model::accuracy(const tensor& x, const std::vector<std::size_t>& labels) {
  const auto preds = predict(x);
  ADVH_CHECK(preds.size() == labels.size());
  if (preds.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(preds.size());
}

std::vector<parameter*> model::params() {
  std::vector<parameter*> out;
  net_->collect_params(out);
  return out;
}

std::size_t model::param_count() {
  std::size_t n = 0;
  for (parameter* p : params()) n += p->value.numel();
  return n;
}

void model::zero_grad() {
  for (parameter* p : params()) p->zero_grad();
}

std::size_t model::param_bytes() { return param_count() * sizeof(float); }

}  // namespace advh::nn
