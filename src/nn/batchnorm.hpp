// Per-channel batch normalisation for NCHW activations, with running
// statistics for inference mode.
#pragma once

#include "nn/layer.hpp"

namespace advh::nn {

class batchnorm2d final : public layer {
 public:
  batchnorm2d(std::string name, std::size_t channels, float momentum = 0.1f,
              float eps = 1e-5f);

  tensor forward(const tensor& x, forward_ctx& ctx) override;
  tensor backward(const tensor& grad_out) override;
  void collect_params(std::vector<parameter*>& out) override;
  void collect_state(std::vector<tensor*>& out) override;

  layer_kind kind() const override { return layer_kind::batchnorm2d; }
  std::string name() const override { return name_; }
  shape infer_output_shape(const shape& in) const override;
  trace_contract trace_info() const override { return {true, false, false}; }

  const tensor& running_mean() const noexcept { return running_mean_; }
  const tensor& running_var() const noexcept { return running_var_; }
  std::size_t channels() const noexcept { return channels_; }
  float momentum() const noexcept { return momentum_; }
  float epsilon() const noexcept { return eps_; }

 private:
  std::string name_;
  std::size_t channels_;
  float momentum_;
  float eps_;
  parameter gamma_;
  parameter beta_;
  tensor running_mean_;
  tensor running_var_;

  // forward cache (training mode)
  tensor input_;
  tensor xhat_;
  std::vector<float> batch_mean_;
  std::vector<float> batch_var_;
  bool cached_training_ = false;
};

}  // namespace advh::nn
