// Inference data-flow traces.
//
// AdvHunter's core observation is that *which neurons activate* determines
// the memory-access pattern of inference. When tracing is enabled, each
// parametric layer records which of its input elements were non-zero
// (post-ReLU sparsity) together with its parameter footprint; each
// activation layer records which outputs fired. The uarch trace generator
// (src/uarch/trace_gen) turns these entries into an address stream for the
// cache/branch simulators, and the Figure-1 bench reads the activation
// entries directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace advh::nn {

enum class layer_kind {
  input,
  conv2d,
  depthwise_conv2d,
  linear,
  relu,
  maxpool2d,
  avgpool2d,
  global_avgpool,
  batchnorm2d,
  dropout,
  flatten,
  residual_add,
  concat,
};

/// Returns a stable lowercase name for a layer kind.
std::string to_string(layer_kind kind);

/// One layer execution within a single-input inference.
struct layer_trace_entry {
  layer_kind kind = layer_kind::input;
  std::string name;             ///< layer instance name
  std::size_t in_numel = 0;     ///< input elements
  std::size_t out_numel = 0;    ///< output elements
  std::size_t weight_bytes = 0; ///< parameter bytes this layer reads
  // Geometry for the uarch trace generator (parametric layers only):
  std::size_t in_channels = 0;  ///< channels (conv) / features (linear)
  std::size_t in_spatial = 0;   ///< H*W (conv) / 1 (linear)
  std::size_t out_channels = 0;
  std::size_t out_spatial = 0;
  /// For parametric layers: indices (into the flattened input) of non-zero
  /// input elements — the data-dependent gather set.
  std::vector<std::uint32_t> active_inputs;
  /// For activation layers: indices of outputs that fired (> 0).
  std::vector<std::uint32_t> active_outputs;
};

/// Complete data-flow record of one inference over a batch of size 1.
struct inference_trace {
  std::vector<layer_trace_entry> layers;

  /// Total active (fired) neurons across all activation layers.
  std::size_t total_active_neurons() const noexcept;
};

/// Static declaration of a layer's trace-event contribution: what its
/// forward() appends to forward_ctx::trace. The static verifier
/// (src/analysis) cross-checks these declarations so that trace_inference
/// provably observes the full data flow the HPC simulator fingerprints — a
/// layer that computes but emits no trace corrupts the uarch footprint
/// silently.
struct trace_contract {
  /// forward() appends at least one layer_trace_entry per invocation.
  bool emits_entry = false;
  /// Entries carry the parametric gather set (active_inputs + geometry).
  bool records_active_inputs = false;
  /// Entries carry the activation firing set (active_outputs).
  bool records_active_outputs = false;
};

/// Options threaded through every layer's forward pass.
struct forward_ctx {
  bool training = false;
  /// When true (the default) layers cache whatever backward() needs, which
  /// mutates layer-owned buffers. Pure-inference callers — most importantly
  /// the parallel measurement engine, which runs traced forwards of one
  /// shared model from many workers — set this false; backward() after a
  /// grad=false forward is a programming error.
  bool grad = true;
  /// When non-null (requires batch size 1) layers append trace entries.
  inference_trace* trace = nullptr;
};

}  // namespace advh::nn
