// Activation layers. ReLU is the workhorse: its firing pattern is the
// data-flow signal AdvHunter observes, so it records active outputs when
// tracing. relu6 (clipped) is used by the EfficientNet-style model.
#pragma once

#include "nn/layer.hpp"

namespace advh::nn {

class relu final : public layer {
 public:
  /// `clip` <= 0 means plain ReLU; a positive clip gives ReLU-`clip`
  /// (e.g. 6 for ReLU6).
  explicit relu(std::string name, float clip = 0.0f)
      : name_(std::move(name)), clip_(clip) {}

  tensor forward(const tensor& x, forward_ctx& ctx) override;
  tensor backward(const tensor& grad_out) override;

  layer_kind kind() const override { return layer_kind::relu; }
  std::string name() const override { return name_; }
  shape infer_output_shape(const shape& in) const override { return in; }
  trace_contract trace_info() const override { return {true, false, true}; }

  float clip() const noexcept { return clip_; }

 private:
  std::string name_;
  float clip_;
  tensor input_;
};

}  // namespace advh::nn
