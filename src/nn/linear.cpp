#include "nn/linear.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/matmul.hpp"

namespace advh::nn {

linear::linear(std::string name, std::size_t in_features,
               std::size_t out_features, rng& gen, bool with_bias)
    : name_(std::move(name)),
      in_(in_features),
      out_(out_features),
      weight_(name_ + ".weight",
              tensor::randn(shape{out_features, in_features}, gen,
                            std::sqrt(2.0f / static_cast<float>(in_features)))) {
  ADVH_CHECK(in_ > 0 && out_ > 0);
  if (with_bias) bias_.emplace(name_ + ".bias", tensor(shape{out_}));
}

shape linear::infer_output_shape(const shape& in) const {
  if (in.rank() != 2) {
    throw shape_error(name_ + ": linear expects rank-2 (batch, features) " +
                      "input, got " + in.to_string() +
                      (in.rank() == 4 ? " (missing flatten?)" : ""));
  }
  if (in[1] != in_) {
    throw shape_error(name_ + ": feature-width mismatch, weight matrix is " +
                      std::to_string(out_) + "x" + std::to_string(in_) +
                      " but would receive " + std::to_string(in[1]) +
                      " features");
  }
  return shape{in[0], out_};
}

tensor linear::forward(const tensor& x, forward_ctx& ctx) {
  ADVH_CHECK_MSG(x.dims().rank() == 2, name_ + ": linear expects rank-2 input");
  ADVH_CHECK_MSG(x.dims()[1] == in_, name_ + ": feature mismatch");
  if (ctx.grad) input_ = x;
  tensor out = ops::matmul_a_bt(x, weight_.value);  // (batch, out)
  if (bias_) {
    const std::size_t batch = x.dims()[0];
    auto o = out.data();
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t j = 0; j < out_; ++j) o[b * out_ + j] += bias_->value[j];
    }
  }

  if (ctx.trace != nullptr) {
    ADVH_CHECK_MSG(x.dims()[0] == 1, "tracing requires batch size 1");
    layer_trace_entry e;
    e.kind = layer_kind::linear;
    e.name = name_;
    e.in_numel = x.numel();
    e.out_numel = out.numel();
    e.weight_bytes =
        (weight_.value.numel() + (bias_ ? bias_->value.numel() : 0)) *
        sizeof(float);
    e.in_channels = in_;
    e.in_spatial = 1;
    e.out_channels = out_;
    e.out_spatial = 1;
    e.active_inputs = nonzero_indices(x);
    ctx.trace->layers.push_back(std::move(e));
  }
  return out;
}

tensor linear::backward(const tensor& grad_out) {
  ADVH_CHECK_MSG(!input_.empty(), "backward before forward");
  ADVH_CHECK(grad_out.dims().rank() == 2 && grad_out.dims()[1] == out_);
  // dW += g^T x ; db += sum over batch ; dx = g W
  tensor dw = ops::matmul_at_b(grad_out, input_);  // (out, in)
  auto wg = weight_.grad.data();
  const float* pdw = dw.data().data();
  for (std::size_t i = 0; i < wg.size(); ++i) wg[i] += pdw[i];

  if (bias_) {
    const std::size_t batch = grad_out.dims()[0];
    auto g = grad_out.data();
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t j = 0; j < out_; ++j) {
        bias_->grad[j] += g[b * out_ + j];
      }
    }
  }
  return ops::matmul(grad_out, weight_.value);  // (batch, in)
}

void linear::collect_params(std::vector<parameter*>& out) {
  out.push_back(&weight_);
  if (bias_) out.push_back(&*bias_);
}

}  // namespace advh::nn
