// Layer abstraction for the from-scratch NN engine.
//
// Every layer supports forward (with optional data-flow tracing) and
// backward (gradient w.r.t. its input, accumulating parameter gradients),
// which is what the gradient-based attacks (FGSM/PGD/DeepFool) require even
// though the *defender* in the paper only ever runs forward.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/trace.hpp"
#include "tensor/tensor.hpp"

namespace advh::nn {

/// A learnable tensor with its gradient accumulator.
struct parameter {
  std::string name;
  tensor value;
  tensor grad;

  parameter(std::string n, tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.dims()) {}

  void zero_grad() noexcept { grad.fill(0.0f); }
};

class layer {
 public:
  virtual ~layer() = default;

  layer(const layer&) = delete;
  layer& operator=(const layer&) = delete;

  /// Computes the layer output; caches whatever backward needs.
  virtual tensor forward(const tensor& x, forward_ctx& ctx) = 0;

  /// Propagates `grad_out` (d loss / d output) to d loss / d input, adding
  /// into parameter .grad members. Must follow a forward() call.
  virtual tensor backward(const tensor& grad_out) = 0;

  /// Appends pointers to this layer's learnable parameters.
  virtual void collect_params(std::vector<parameter*>& out) { (void)out; }

  /// Appends pointers to *all* persistent tensors (parameters plus
  /// non-learnable buffers such as batch-norm running stats) for
  /// serialization.
  virtual void collect_state(std::vector<tensor*>& out);

  virtual layer_kind kind() const = 0;
  virtual std::string name() const = 0;

 protected:
  layer() = default;

  /// Records indices of non-zero elements of `x` into a trace entry's
  /// active-input list (single-batch tensors only).
  static std::vector<std::uint32_t> nonzero_indices(const tensor& x);
};

using layer_ptr = std::unique_ptr<layer>;

}  // namespace advh::nn
