// Layer abstraction for the from-scratch NN engine.
//
// Every layer supports forward (with optional data-flow tracing) and
// backward (gradient w.r.t. its input, accumulating parameter gradients),
// which is what the gradient-based attacks (FGSM/PGD/DeepFool) require even
// though the *defender* in the paper only ever runs forward.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/trace.hpp"
#include "tensor/tensor.hpp"

namespace advh::nn {

/// A learnable tensor with its gradient accumulator.
struct parameter {
  std::string name;
  tensor value;
  tensor grad;

  parameter(std::string n, tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.dims()) {}

  void zero_grad() noexcept { grad.fill(0.0f); }
};

class layer {
 public:
  virtual ~layer() = default;

  layer(const layer&) = delete;
  layer& operator=(const layer&) = delete;

  /// Computes the layer output; caches whatever backward needs.
  virtual tensor forward(const tensor& x, forward_ctx& ctx) = 0;

  /// Propagates `grad_out` (d loss / d output) to d loss / d input, adding
  /// into parameter .grad members. Must follow a forward() call.
  virtual tensor backward(const tensor& grad_out) = 0;

  /// Appends pointers to this layer's learnable parameters.
  virtual void collect_params(std::vector<parameter*>& out) { (void)out; }

  /// Appends pointers to *all* persistent tensors (parameters plus
  /// non-learnable buffers such as batch-norm running stats) for
  /// serialization.
  virtual void collect_state(std::vector<tensor*>& out);

  virtual layer_kind kind() const = 0;
  virtual std::string name() const = 0;

  /// Computes the shape this layer would output for input shape `in`
  /// *without executing it* — the basis of the static verifier's symbolic
  /// shape propagation. Throws advh::shape_error with a layer-precise
  /// message when `in` violates the layer's geometry. The default throws
  /// advh::unsupported_error; every shipped layer type overrides it.
  virtual shape infer_output_shape(const shape& in) const;

  /// Declares what this layer's forward() contributes to an inference
  /// trace. The default declares *nothing*, which the static verifier
  /// flags as an error: a layer that computes but emits no trace is
  /// invisible to the HPC simulator and corrupts detection fidelity.
  virtual trace_contract trace_info() const { return {}; }

  /// Invokes `fn` on each directly-owned sub-layer (containers and
  /// composite blocks only); leaves do nothing. Drives the verifier's
  /// graph walk.
  virtual void for_each_child(
      const std::function<void(const layer&)>& fn) const {
    (void)fn;
  }

 protected:
  layer() = default;

  /// Records indices of non-zero elements of `x` into a trace entry's
  /// active-input list (single-batch tensors only).
  static std::vector<std::uint32_t> nonzero_indices(const tensor& x);
};

using layer_ptr = std::unique_ptr<layer>;

}  // namespace advh::nn
