// First-order optimizers over a parameter set.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace advh::nn {

class optimizer {
 public:
  explicit optimizer(std::vector<parameter*> params)
      : params_(std::move(params)) {}
  virtual ~optimizer() = default;

  optimizer(const optimizer&) = delete;
  optimizer& operator=(const optimizer&) = delete;

  /// Applies one update using the accumulated gradients.
  virtual void step() = 0;

  void zero_grad() noexcept {
    for (parameter* p : params_) p->zero_grad();
  }

 protected:
  std::vector<parameter*> params_;
};

/// SGD with classical momentum and decoupled weight decay.
class sgd final : public optimizer {
 public:
  sgd(std::vector<parameter*> params, float lr, float momentum = 0.9f,
      float weight_decay = 0.0f);

  void step() override;
  void set_lr(float lr) noexcept { lr_ = lr; }
  float lr() const noexcept { return lr_; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<tensor> velocity_;
};

/// Adam with bias correction.
class adam final : public optimizer {
 public:
  adam(std::vector<parameter*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);

  void step() override;
  void set_lr(float lr) noexcept { lr_ = lr; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  std::size_t t_ = 0;
  std::vector<tensor> m_;
  std::vector<tensor> v_;
};

}  // namespace advh::nn
