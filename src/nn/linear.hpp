// Fully connected layer: y = x W^T + b, x is (batch, in).
#pragma once

#include <optional>

#include "nn/layer.hpp"

namespace advh::nn {

class linear final : public layer {
 public:
  linear(std::string name, std::size_t in_features, std::size_t out_features,
         rng& gen, bool with_bias = true);

  tensor forward(const tensor& x, forward_ctx& ctx) override;
  tensor backward(const tensor& grad_out) override;
  void collect_params(std::vector<parameter*>& out) override;

  layer_kind kind() const override { return layer_kind::linear; }
  std::string name() const override { return name_; }
  shape infer_output_shape(const shape& in) const override;
  trace_contract trace_info() const override { return {true, true, false}; }

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }
  parameter& weight() noexcept { return weight_; }

 private:
  std::string name_;
  std::size_t in_;
  std::size_t out_;
  parameter weight_;  // (out, in)
  std::optional<parameter> bias_;
  tensor input_;
};

}  // namespace advh::nn
