// Sequential container. It is itself a layer, so architecture blocks can
// nest containers arbitrarily deep (residual/dense blocks do).
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "nn/layer.hpp"

namespace advh::nn {

class sequential : public layer {
 public:
  explicit sequential(std::string name) : name_(std::move(name)) {}

  /// Appends a layer; returns a reference to this for chaining.
  sequential& add(layer_ptr l);

  /// Constructs a layer in place and appends it.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto l = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *l;
    add(std::move(l));
    return ref;
  }

  tensor forward(const tensor& x, forward_ctx& ctx) override;
  tensor backward(const tensor& grad_out) override;
  void collect_params(std::vector<parameter*>& out) override;
  void collect_state(std::vector<tensor*>& out) override;

  layer_kind kind() const override { return layer_kind::input; }
  std::string name() const override { return name_; }
  shape infer_output_shape(const shape& in) const override;
  trace_contract trace_info() const override;
  void for_each_child(
      const std::function<void(const layer&)>& fn) const override;

  std::size_t size() const noexcept { return layers_.size(); }
  layer& at(std::size_t i);
  const layer& at(std::size_t i) const;

 private:
  std::string name_;
  std::vector<layer_ptr> layers_;
};

}  // namespace advh::nn
