// Structural layers without learnable state: flatten and dropout.
#pragma once

#include "nn/layer.hpp"

namespace advh::nn {

/// Collapses (N, C, H, W) to (N, C*H*W).
class flatten final : public layer {
 public:
  explicit flatten(std::string name) : name_(std::move(name)) {}

  tensor forward(const tensor& x, forward_ctx& ctx) override;
  tensor backward(const tensor& grad_out) override;

  layer_kind kind() const override { return layer_kind::flatten; }
  std::string name() const override { return name_; }
  shape infer_output_shape(const shape& in) const override;
  trace_contract trace_info() const override { return {true, false, false}; }

 private:
  std::string name_;
  shape in_shape_;
};

/// Inverted dropout; identity in inference mode.
class dropout final : public layer {
 public:
  dropout(std::string name, float rate, rng& gen)
      : name_(std::move(name)), rate_(rate), gen_(gen.split()) {}

  tensor forward(const tensor& x, forward_ctx& ctx) override;
  tensor backward(const tensor& grad_out) override;

  layer_kind kind() const override { return layer_kind::dropout; }
  std::string name() const override { return name_; }
  shape infer_output_shape(const shape& in) const override { return in; }
  trace_contract trace_info() const override { return {true, false, false}; }

  float rate() const noexcept { return rate_; }

 private:
  std::string name_;
  float rate_;
  rng gen_;
  tensor mask_;
  bool cached_training_ = false;
};

}  // namespace advh::nn
