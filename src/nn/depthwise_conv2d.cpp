#include "nn/depthwise_conv2d.hpp"

#include <cmath>

#include "common/error.hpp"

namespace advh::nn {

depthwise_conv2d::depthwise_conv2d(std::string name,
                                   const depthwise_conv2d_config& cfg,
                                   rng& gen)
    : name_(std::move(name)),
      cfg_(cfg),
      weight_(name_ + ".weight",
              tensor::randn(shape{cfg.channels, cfg.kernel * cfg.kernel}, gen,
                            std::sqrt(2.0f / static_cast<float>(
                                                 cfg.kernel * cfg.kernel)))) {
  ADVH_CHECK(cfg_.channels > 0 && cfg_.kernel > 0 && cfg_.stride > 0);
  if (cfg_.bias) {
    bias_.emplace(name_ + ".bias", tensor(shape{cfg_.channels}));
  }
}

shape depthwise_conv2d::infer_output_shape(const shape& in) const {
  if (in.rank() != 4) {
    throw shape_error(name_ + ": depthwise_conv2d expects NCHW input, got " +
                      in.to_string());
  }
  if (in[1] != cfg_.channels) {
    throw shape_error(name_ + ": channel mismatch, configured for " +
                      std::to_string(cfg_.channels) +
                      " channels but would receive " + std::to_string(in[1]));
  }
  if (in[2] + 2 * cfg_.pad < cfg_.kernel || in[3] + 2 * cfg_.pad < cfg_.kernel) {
    throw shape_error(name_ + ": " + std::to_string(cfg_.kernel) + "x" +
                      std::to_string(cfg_.kernel) + " kernel (pad " +
                      std::to_string(cfg_.pad) + ") does not fit input " +
                      in.to_string());
  }
  const std::size_t oh = (in[2] + 2 * cfg_.pad - cfg_.kernel) / cfg_.stride + 1;
  const std::size_t ow = (in[3] + 2 * cfg_.pad - cfg_.kernel) / cfg_.stride + 1;
  return shape{in[0], cfg_.channels, oh, ow};
}

tensor depthwise_conv2d::forward(const tensor& x, forward_ctx& ctx) {
  ADVH_CHECK_MSG(x.dims().rank() == 4, "depthwise_conv2d expects NCHW");
  ADVH_CHECK_MSG(x.dims()[1] == cfg_.channels, name_ + ": channel mismatch");
  const std::size_t batch = x.dims()[0];
  const std::size_t ih = x.dims()[2];
  const std::size_t iw = x.dims()[3];
  ADVH_CHECK(ih + 2 * cfg_.pad >= cfg_.kernel &&
             iw + 2 * cfg_.pad >= cfg_.kernel);
  const std::size_t oh = (ih + 2 * cfg_.pad - cfg_.kernel) / cfg_.stride + 1;
  const std::size_t ow = (iw + 2 * cfg_.pad - cfg_.kernel) / cfg_.stride + 1;

  if (ctx.grad) input_ = x;
  tensor out(shape{batch, cfg_.channels, oh, ow});
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < cfg_.channels; ++c) {
      const float* w = weight_.value.data().data() +
                       c * cfg_.kernel * cfg_.kernel;
      const float bv = bias_ ? bias_->value[c] : 0.0f;
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t xw = 0; xw < ow; ++xw) {
          double acc = bv;
          for (std::size_t kh = 0; kh < cfg_.kernel; ++kh) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(y * cfg_.stride + kh) -
                static_cast<std::ptrdiff_t>(cfg_.pad);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(ih)) continue;
            for (std::size_t kw = 0; kw < cfg_.kernel; ++kw) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(xw * cfg_.stride + kw) -
                  static_cast<std::ptrdiff_t>(cfg_.pad);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(iw)) continue;
              acc += static_cast<double>(
                         x.at(b, c, static_cast<std::size_t>(iy),
                              static_cast<std::size_t>(ix))) *
                     w[kh * cfg_.kernel + kw];
            }
          }
          out.at(b, c, y, xw) = static_cast<float>(acc);
        }
      }
    }
  }

  if (ctx.trace != nullptr) {
    ADVH_CHECK_MSG(batch == 1, "tracing requires batch size 1");
    layer_trace_entry e;
    e.kind = layer_kind::depthwise_conv2d;
    e.name = name_;
    e.in_numel = x.numel();
    e.out_numel = out.numel();
    e.weight_bytes =
        (weight_.value.numel() + (bias_ ? bias_->value.numel() : 0)) *
        sizeof(float);
    e.in_channels = cfg_.channels;
    e.in_spatial = ih * iw;
    e.out_channels = cfg_.channels;
    e.out_spatial = oh * ow;
    e.active_inputs = nonzero_indices(x);
    ctx.trace->layers.push_back(std::move(e));
  }
  return out;
}

tensor depthwise_conv2d::backward(const tensor& grad_out) {
  ADVH_CHECK_MSG(!input_.empty(), "backward before forward");
  const std::size_t batch = input_.dims()[0];
  const std::size_t ih = input_.dims()[2];
  const std::size_t iw = input_.dims()[3];
  const std::size_t oh = grad_out.dims()[2];
  const std::size_t ow = grad_out.dims()[3];

  tensor grad_in(input_.dims());
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < cfg_.channels; ++c) {
      const float* w =
          weight_.value.data().data() + c * cfg_.kernel * cfg_.kernel;
      float* dw = weight_.grad.data().data() + c * cfg_.kernel * cfg_.kernel;
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t xw = 0; xw < ow; ++xw) {
          const float g = grad_out.at(b, c, y, xw);
          if (bias_) bias_->grad[c] += g;
          for (std::size_t kh = 0; kh < cfg_.kernel; ++kh) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(y * cfg_.stride + kh) -
                static_cast<std::ptrdiff_t>(cfg_.pad);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(ih)) continue;
            for (std::size_t kw = 0; kw < cfg_.kernel; ++kw) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(xw * cfg_.stride + kw) -
                  static_cast<std::ptrdiff_t>(cfg_.pad);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(iw)) continue;
              const auto uy = static_cast<std::size_t>(iy);
              const auto ux = static_cast<std::size_t>(ix);
              dw[kh * cfg_.kernel + kw] += g * input_.at(b, c, uy, ux);
              grad_in.at(b, c, uy, ux) += g * w[kh * cfg_.kernel + kw];
            }
          }
        }
      }
    }
  }
  return grad_in;
}

void depthwise_conv2d::collect_params(std::vector<parameter*>& out) {
  out.push_back(&weight_);
  if (bias_) out.push_back(&*bias_);
}

}  // namespace advh::nn
