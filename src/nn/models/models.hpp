// Model zoo: the paper's case-study CNN plus scaled-down versions of the
// three scenario architectures (Table 1). Sizes are chosen so that training
// and traced inference stay laptop-fast while keeping each family's
// structural signature (depthwise-separable / residual / dense
// connectivity), which is what shapes the data-flow traces.
#pragma once

#include <memory>
#include <string>

#include "nn/model.hpp"

namespace advh::nn {

enum class architecture {
  case_study_cnn,    ///< 4 conv + 2 FC CNN from the Figure-1 case study
  efficientnet_lite, ///< S1: depthwise-separable stack (EfficientNet family)
  resnet_small,      ///< S2: residual stack (ResNet18 family)
  densenet_small,    ///< S3: dense-connectivity stack (DenseNet201 family)
};

std::string to_string(architecture a);
architecture architecture_from_string(const std::string& s);

/// Builds a freshly initialised model.
/// `input` is the CHW shape of one example; `classes` the output width;
/// `seed` drives weight initialisation.
std::unique_ptr<model> make_model(architecture a, shape input,
                                  std::size_t classes, std::uint64_t seed);

}  // namespace advh::nn
