#include "nn/models/models.hpp"

#include "common/error.hpp"
#include "nn/blocks.hpp"
#include "nn/linear.hpp"
#include "nn/simple_layers.hpp"

namespace advh::nn {

namespace {

std::unique_ptr<model> build_case_study_cnn(shape input, std::size_t classes,
                                            rng gen) {
  const std::size_t c = input[0], h = input[1], w = input[2];
  auto net = std::make_unique<sequential>("case_study_cnn");
  net->emplace<conv2d>("conv1", conv2d_config{c, 12, 3, 1, 1, true}, gen);
  net->emplace<relu>("act1");
  net->emplace<maxpool2d>("pool1", 2);
  net->emplace<conv2d>("conv2", conv2d_config{12, 24, 3, 1, 1, true}, gen);
  net->emplace<relu>("act2");
  net->emplace<conv2d>("conv3", conv2d_config{24, 24, 3, 1, 1, true}, gen);
  net->emplace<relu>("act3");
  net->emplace<maxpool2d>("pool2", 2);
  net->emplace<conv2d>("conv4", conv2d_config{24, 32, 3, 1, 1, true}, gen);
  net->emplace<relu>("act4");
  net->emplace<maxpool2d>("pool3", 2);
  const std::size_t fh = h / 8, fw = w / 8;
  net->emplace<flatten>("flat");
  net->emplace<linear>("fc1", 32 * fh * fw, 64, gen);
  net->emplace<relu>("act5");
  net->emplace<linear>("fc2", 64, classes, gen);
  return std::make_unique<model>("case_study_cnn", std::move(net), input,
                                 classes);
}

std::unique_ptr<model> build_efficientnet_lite(shape input,
                                               std::size_t classes, rng gen) {
  const std::size_t c = input[0];
  auto net = std::make_unique<sequential>("efficientnet_lite");
  net->emplace<conv2d>("stem", conv2d_config{c, 8, 3, 1, 1, false}, gen);
  net->emplace<batchnorm2d>("stem_bn", 8);
  net->emplace<relu>("stem_act", 6.0f);
  net->add(make_separable_block("sep1", 8, 16, 2, gen));
  net->add(make_separable_block("sep2", 16, 24, 2, gen));
  net->add(make_separable_block("sep3", 24, 32, 2, gen));
  net->emplace<global_avgpool>("gap");
  net->emplace<linear>("head", 32, classes, gen);
  return std::make_unique<model>("efficientnet_lite", std::move(net), input,
                                 classes);
}

std::unique_ptr<model> build_resnet_small(shape input, std::size_t classes,
                                          rng gen) {
  const std::size_t c = input[0];
  auto net = std::make_unique<sequential>("resnet_small");
  net->emplace<conv2d>("stem", conv2d_config{c, 8, 3, 1, 1, false}, gen);
  net->emplace<batchnorm2d>("stem_bn", 8);
  net->emplace<relu>("stem_act");
  net->emplace<residual_block>("block1", 8, 8, 1, gen);
  net->emplace<residual_block>("block2", 8, 16, 2, gen);
  net->emplace<residual_block>("block3", 16, 32, 2, gen);
  net->emplace<residual_block>("block4", 32, 64, 2, gen);
  net->emplace<global_avgpool>("gap");
  net->emplace<linear>("head", 64, classes, gen);
  return std::make_unique<model>("resnet_small", std::move(net), input,
                                 classes);
}

std::unique_ptr<model> build_densenet_small(shape input, std::size_t classes,
                                            rng gen) {
  const std::size_t c = input[0];
  auto net = std::make_unique<sequential>("densenet_small");
  net->emplace<conv2d>("stem", conv2d_config{c, 8, 3, 1, 1, false}, gen);

  auto& db1 = net->emplace<dense_block>("dense1", 8, 6, 3, gen);
  const std::size_t c1 = db1.out_channels();          // 8 + 18 = 26
  net->add(make_dense_transition("trans1", c1, c1 / 2, gen));

  auto& db2 = net->emplace<dense_block>("dense2", c1 / 2, 6, 3, gen);
  const std::size_t c2 = db2.out_channels();
  net->add(make_dense_transition("trans2", c2, c2 / 2, gen));

  auto& db3 = net->emplace<dense_block>("dense3", c2 / 2, 6, 3, gen);
  const std::size_t c3 = db3.out_channels();

  net->emplace<batchnorm2d>("final_bn", c3);
  net->emplace<relu>("final_act");
  net->emplace<global_avgpool>("gap");
  net->emplace<linear>("head", c3, classes, gen);
  return std::make_unique<model>("densenet_small", std::move(net), input,
                                 classes);
}

}  // namespace

std::string to_string(architecture a) {
  switch (a) {
    case architecture::case_study_cnn:
      return "case_study_cnn";
    case architecture::efficientnet_lite:
      return "efficientnet_lite";
    case architecture::resnet_small:
      return "resnet_small";
    case architecture::densenet_small:
      return "densenet_small";
  }
  return "unknown";
}

architecture architecture_from_string(const std::string& s) {
  if (s == "case_study_cnn") return architecture::case_study_cnn;
  if (s == "efficientnet_lite") return architecture::efficientnet_lite;
  if (s == "resnet_small") return architecture::resnet_small;
  if (s == "densenet_small") return architecture::densenet_small;
  throw invariant_error("unknown architecture: " + s);
}

std::unique_ptr<model> make_model(architecture a, shape input,
                                  std::size_t classes, std::uint64_t seed) {
  ADVH_CHECK(input.rank() == 3);
  rng gen(seed);
  switch (a) {
    case architecture::case_study_cnn:
      ADVH_CHECK_MSG(input[1] % 8 == 0 && input[2] % 8 == 0,
                     "case_study_cnn needs spatial dims divisible by 8");
      return build_case_study_cnn(input, classes, gen);
    case architecture::efficientnet_lite:
      return build_efficientnet_lite(input, classes, gen);
    case architecture::resnet_small:
      return build_resnet_small(input, classes, gen);
    case architecture::densenet_small:
      return build_densenet_small(input, classes, gen);
  }
  throw invariant_error("unhandled architecture");
}

}  // namespace advh::nn
