#include "nn/conv2d.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/matmul.hpp"

namespace advh::nn {

namespace {
tensor he_normal(shape s, std::size_t fan_in, rng& gen) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return tensor::randn(s, gen, stddev);
}
}  // namespace

conv2d::conv2d(std::string name, const conv2d_config& cfg, rng& gen)
    : name_(std::move(name)),
      cfg_(cfg),
      weight_(name_ + ".weight",
              he_normal(shape{cfg.out_channels,
                              cfg.in_channels * cfg.kernel * cfg.kernel},
                        cfg.in_channels * cfg.kernel * cfg.kernel, gen)) {
  ADVH_CHECK(cfg_.in_channels > 0 && cfg_.out_channels > 0);
  ADVH_CHECK(cfg_.kernel > 0 && cfg_.stride > 0);
  if (cfg_.bias) {
    bias_.emplace(name_ + ".bias", tensor(shape{cfg_.out_channels}));
  }
}

shape conv2d::infer_output_shape(const shape& in) const {
  if (in.rank() != 4) {
    throw shape_error(name_ + ": conv2d expects NCHW input, got rank " +
                      std::to_string(in.rank()) + " shape " + in.to_string());
  }
  if (in[1] != cfg_.in_channels) {
    throw shape_error(name_ + ": channel mismatch, configured for " +
                      std::to_string(cfg_.in_channels) +
                      " input channels but would receive " +
                      std::to_string(in[1]));
  }
  if (in[2] + 2 * cfg_.pad < cfg_.kernel || in[3] + 2 * cfg_.pad < cfg_.kernel) {
    throw shape_error(name_ + ": " + std::to_string(cfg_.kernel) + "x" +
                      std::to_string(cfg_.kernel) +
                      " kernel (pad " + std::to_string(cfg_.pad) +
                      ") does not fit input " + in.to_string());
  }
  const ops::conv_geometry g{cfg_.in_channels, in[2],       in[3], cfg_.kernel,
                             cfg_.kernel,      cfg_.stride, cfg_.pad};
  return shape{in[0], cfg_.out_channels, g.out_h(), g.out_w()};
}

tensor conv2d::forward(const tensor& x, forward_ctx& ctx) {
  ADVH_CHECK_MSG(x.dims().rank() == 4, "conv2d expects NCHW input");
  ADVH_CHECK_MSG(x.dims()[1] == cfg_.in_channels,
                 name_ + ": channel mismatch");
  const std::size_t batch = x.dims()[0];

  const ops::conv_geometry g{cfg_.in_channels, x.dims()[2], x.dims()[3],
                             cfg_.kernel,      cfg_.kernel, cfg_.stride,
                             cfg_.pad};
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();

  if (ctx.grad) {
    input_ = x;
    cols_.clear();
    cols_.reserve(batch);
  }

  tensor out(shape{batch, cfg_.out_channels, oh, ow});
  for (std::size_t b = 0; b < batch; ++b) {
    tensor col = ops::im2col(x, b, g);
    // (out_c, rows) x (rows, oh*ow) -> (out_c, oh*ow)
    tensor y = ops::matmul(weight_.value, col);
    if (ctx.grad) cols_.push_back(std::move(col));
    float* po = out.data().data() + b * cfg_.out_channels * oh * ow;
    const float* py = y.data().data();
    for (std::size_t i = 0; i < cfg_.out_channels * oh * ow; ++i) po[i] = py[i];
    if (bias_) {
      for (std::size_t c = 0; c < cfg_.out_channels; ++c) {
        const float bv = bias_->value[c];
        for (std::size_t i = 0; i < oh * ow; ++i) po[c * oh * ow + i] += bv;
      }
    }
  }

  if (ctx.trace != nullptr) {
    ADVH_CHECK_MSG(batch == 1, "tracing requires batch size 1");
    layer_trace_entry e;
    e.kind = layer_kind::conv2d;
    e.name = name_;
    e.in_numel = x.numel();
    e.out_numel = out.numel();
    e.weight_bytes =
        (weight_.value.numel() + (bias_ ? bias_->value.numel() : 0)) *
        sizeof(float);
    e.in_channels = cfg_.in_channels;
    e.in_spatial = x.dims()[2] * x.dims()[3];
    e.out_channels = cfg_.out_channels;
    e.out_spatial = oh * ow;
    e.active_inputs = nonzero_indices(x);
    ctx.trace->layers.push_back(std::move(e));
  }
  return out;
}

tensor conv2d::backward(const tensor& grad_out) {
  ADVH_CHECK_MSG(!input_.empty(), "backward before forward");
  const std::size_t batch = input_.dims()[0];
  const ops::conv_geometry g{cfg_.in_channels, input_.dims()[2],
                             input_.dims()[3], cfg_.kernel,
                             cfg_.kernel,      cfg_.stride,
                             cfg_.pad};
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  ADVH_CHECK(grad_out.dims() ==
             shape({batch, cfg_.out_channels, oh, ow}));

  tensor grad_in(input_.dims());
  for (std::size_t b = 0; b < batch; ++b) {
    tensor gy(shape{cfg_.out_channels, oh * ow});
    const float* pg =
        grad_out.data().data() + b * cfg_.out_channels * oh * ow;
    float* pgy = gy.data().data();
    for (std::size_t i = 0; i < gy.numel(); ++i) pgy[i] = pg[i];

    // dW += gy * cols^T  -> (out_c, rows)
    tensor dw = ops::matmul_a_bt(gy, cols_[b]);
    auto wgrad = weight_.grad.data();
    const float* pdw = dw.data().data();
    for (std::size_t i = 0; i < wgrad.size(); ++i) wgrad[i] += pdw[i];

    if (bias_) {
      for (std::size_t c = 0; c < cfg_.out_channels; ++c) {
        double acc = 0.0;
        for (std::size_t i = 0; i < oh * ow; ++i) acc += pgy[c * oh * ow + i];
        bias_->grad[c] += static_cast<float>(acc);
      }
    }

    // dcols = W^T * gy -> (rows, oh*ow), then scatter back.
    tensor dcols = ops::matmul_at_b(weight_.value, gy);
    ops::col2im_accumulate(dcols, b, g, grad_in);
  }
  return grad_in;
}

void conv2d::collect_params(std::vector<parameter*>& out) {
  out.push_back(&weight_);
  if (bias_) out.push_back(&*bias_);
}

}  // namespace advh::nn
