// Minibatch training loop used to produce the scenario models of Table 1.
#pragma once

#include <functional>
#include <vector>

#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"

namespace advh::nn {

struct train_config {
  std::size_t epochs = 5;
  std::size_t batch_size = 32;
  float lr = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  /// lr is multiplied by this factor after each epoch.
  float lr_decay = 0.7f;
  std::uint64_t shuffle_seed = 1;
  /// Called after each epoch with (epoch, mean train loss, train accuracy).
  std::function<void(std::size_t, double, double)> on_epoch;
};

struct train_result {
  std::vector<double> epoch_loss;
  std::vector<double> epoch_accuracy;
};

/// Trains `m` on (images, labels) where images is (N, C, H, W).
train_result train_classifier(model& m, const tensor& images,
                              const std::vector<std::size_t>& labels,
                              const train_config& cfg);

/// Copies rows `indices` of a (N, C, H, W) tensor into a new batch tensor.
tensor gather_batch(const tensor& images, const std::vector<std::size_t>& indices);

/// Extracts one example as a batch-of-one tensor.
tensor single_example(const tensor& images, std::size_t index);

}  // namespace advh::nn
