// Composite architecture blocks: residual (ResNet), dense (DenseNet),
// and depthwise-separable (EfficientNet-style) units.
#pragma once

#include <optional>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/depthwise_conv2d.hpp"
#include "nn/layer.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"

namespace advh::nn {

/// Basic ResNet block: conv-bn-relu-conv-bn plus identity (or strided 1x1
/// projection) skip, followed by ReLU.
class residual_block final : public layer {
 public:
  residual_block(std::string name, std::size_t in_channels,
                 std::size_t out_channels, std::size_t stride, rng& gen);

  tensor forward(const tensor& x, forward_ctx& ctx) override;
  tensor backward(const tensor& grad_out) override;
  void collect_params(std::vector<parameter*>& out) override;
  void collect_state(std::vector<tensor*>& out) override;

  layer_kind kind() const override { return layer_kind::residual_add; }
  std::string name() const override { return name_; }
  shape infer_output_shape(const shape& in) const override;
  trace_contract trace_info() const override { return {true, false, false}; }
  void for_each_child(
      const std::function<void(const layer&)>& fn) const override;

 private:
  std::string name_;
  sequential main_;
  std::optional<sequential> projection_;
  relu out_relu_;
};

/// DenseNet block: `steps` bn-relu-conv3x3(growth) units, each consuming
/// the concatenation of the block input and all previous unit outputs.
class dense_block final : public layer {
 public:
  dense_block(std::string name, std::size_t in_channels, std::size_t growth,
              std::size_t steps, rng& gen);

  tensor forward(const tensor& x, forward_ctx& ctx) override;
  tensor backward(const tensor& grad_out) override;
  void collect_params(std::vector<parameter*>& out) override;
  void collect_state(std::vector<tensor*>& out) override;

  layer_kind kind() const override { return layer_kind::concat; }
  std::string name() const override { return name_; }
  shape infer_output_shape(const shape& in) const override;
  trace_contract trace_info() const override { return {true, false, false}; }
  void for_each_child(
      const std::function<void(const layer&)>& fn) const override;

  std::size_t out_channels() const noexcept {
    return in_channels_ + growth_ * units_.size();
  }

 private:
  std::string name_;
  std::size_t in_channels_;
  std::size_t growth_;
  std::vector<std::unique_ptr<sequential>> units_;
  std::vector<tensor> unit_inputs_;  // cached concatenated inputs
};

/// DenseNet transition: bn-relu-1x1 conv (channel reduction) + 2x2 avgpool.
std::unique_ptr<sequential> make_dense_transition(std::string name,
                                                  std::size_t in_channels,
                                                  std::size_t out_channels,
                                                  rng& gen);

/// Depthwise-separable unit: depthwise 3x3 (stride) - bn - relu6 -
/// pointwise 1x1 - bn - relu6.
std::unique_ptr<sequential> make_separable_block(std::string name,
                                                 std::size_t in_channels,
                                                 std::size_t out_channels,
                                                 std::size_t stride, rng& gen);

/// Concatenates two NCHW tensors along the channel axis.
tensor cat_channels(const tensor& a, const tensor& b);

/// Splits an NCHW gradient into the first `c_a` channels and the rest.
std::pair<tensor, tensor> split_channels(const tensor& g, std::size_t c_a);

}  // namespace advh::nn
