#include "nn/layer.hpp"

#include "common/error.hpp"

namespace advh::nn {

std::string to_string(layer_kind kind) {
  switch (kind) {
    case layer_kind::input:
      return "input";
    case layer_kind::conv2d:
      return "conv2d";
    case layer_kind::depthwise_conv2d:
      return "depthwise_conv2d";
    case layer_kind::linear:
      return "linear";
    case layer_kind::relu:
      return "relu";
    case layer_kind::maxpool2d:
      return "maxpool2d";
    case layer_kind::avgpool2d:
      return "avgpool2d";
    case layer_kind::global_avgpool:
      return "global_avgpool";
    case layer_kind::batchnorm2d:
      return "batchnorm2d";
    case layer_kind::dropout:
      return "dropout";
    case layer_kind::flatten:
      return "flatten";
    case layer_kind::residual_add:
      return "residual_add";
    case layer_kind::concat:
      return "concat";
  }
  return "unknown";
}

std::size_t inference_trace::total_active_neurons() const noexcept {
  std::size_t n = 0;
  for (const auto& e : layers) n += e.active_outputs.size();
  return n;
}

shape layer::infer_output_shape(const shape& in) const {
  (void)in;
  throw unsupported_error(name() + " (" + to_string(kind()) +
                          "): layer declares no static shape inference");
}

void layer::collect_state(std::vector<tensor*>& out) {
  std::vector<parameter*> params;
  collect_params(params);
  for (parameter* p : params) out.push_back(&p->value);
}

std::vector<std::uint32_t> layer::nonzero_indices(const tensor& x) {
  std::vector<std::uint32_t> idx;
  auto d = x.data();
  idx.reserve(d.size() / 2);
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d[i] != 0.0f) idx.push_back(static_cast<std::uint32_t>(i));
  }
  return idx;
}

}  // namespace advh::nn
