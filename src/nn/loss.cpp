#include "nn/loss.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace advh::nn {

loss_result softmax_cross_entropy(const tensor& logits,
                                  const std::vector<std::size_t>& labels) {
  ADVH_CHECK(logits.dims().rank() == 2);
  const std::size_t batch = logits.dims()[0];
  const std::size_t classes = logits.dims()[1];
  ADVH_CHECK_MSG(labels.size() == batch, "labels must match batch size");

  tensor probs = ops::softmax_rows(logits);
  loss_result out;
  out.grad_logits = probs;
  double loss = 0.0;
  auto g = out.grad_logits.data();
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    ADVH_CHECK(labels[b] < classes);
    const float p = probs.at(b, labels[b]);
    loss += -std::log(std::max(p, 1e-12f));
    g[b * classes + labels[b]] -= 1.0f;
  }
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= inv_batch;
  out.value = loss / static_cast<double>(batch);
  return out;
}

tensor nll_grad_single(const tensor& logits, std::size_t target) {
  ADVH_CHECK(logits.dims().rank() == 2 && logits.dims()[0] == 1);
  ADVH_CHECK(target < logits.dims()[1]);
  tensor grad = ops::softmax_rows(logits);
  grad[target] -= 1.0f;
  return grad;
}

}  // namespace advh::nn
