#include "nn/blocks.hpp"

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace advh::nn {

tensor cat_channels(const tensor& a, const tensor& b) {
  ADVH_CHECK(a.dims().rank() == 4 && b.dims().rank() == 4);
  ADVH_CHECK(a.dims()[0] == b.dims()[0] && a.dims()[2] == b.dims()[2] &&
             a.dims()[3] == b.dims()[3]);
  const std::size_t n = a.dims()[0], ca = a.dims()[1], cb = b.dims()[1],
                    h = a.dims()[2], w = a.dims()[3];
  tensor out(shape{n, ca + cb, h, w});
  const std::size_t plane = h * w;
  for (std::size_t bidx = 0; bidx < n; ++bidx) {
    float* po = out.data().data() + bidx * (ca + cb) * plane;
    const float* pa = a.data().data() + bidx * ca * plane;
    const float* pb = b.data().data() + bidx * cb * plane;
    for (std::size_t i = 0; i < ca * plane; ++i) po[i] = pa[i];
    for (std::size_t i = 0; i < cb * plane; ++i) po[ca * plane + i] = pb[i];
  }
  return out;
}

std::pair<tensor, tensor> split_channels(const tensor& g, std::size_t c_a) {
  ADVH_CHECK(g.dims().rank() == 4);
  ADVH_CHECK(c_a < g.dims()[1]);
  const std::size_t n = g.dims()[0], c = g.dims()[1], h = g.dims()[2],
                    w = g.dims()[3];
  const std::size_t c_b = c - c_a;
  tensor ga(shape{n, c_a, h, w});
  tensor gb(shape{n, c_b, h, w});
  const std::size_t plane = h * w;
  for (std::size_t bidx = 0; bidx < n; ++bidx) {
    const float* pg = g.data().data() + bidx * c * plane;
    float* pa = ga.data().data() + bidx * c_a * plane;
    float* pb = gb.data().data() + bidx * c_b * plane;
    for (std::size_t i = 0; i < c_a * plane; ++i) pa[i] = pg[i];
    for (std::size_t i = 0; i < c_b * plane; ++i) pb[i] = pg[c_a * plane + i];
  }
  return {std::move(ga), std::move(gb)};
}

residual_block::residual_block(std::string name, std::size_t in_channels,
                               std::size_t out_channels, std::size_t stride,
                               rng& gen)
    : name_(std::move(name)), main_(name_ + ".main"), out_relu_(name_ + ".relu_out") {
  main_.emplace<conv2d>(
      name_ + ".conv1",
      conv2d_config{in_channels, out_channels, 3, stride, 1, false}, gen);
  main_.emplace<batchnorm2d>(name_ + ".bn1", out_channels);
  main_.emplace<relu>(name_ + ".relu1");
  main_.emplace<conv2d>(
      name_ + ".conv2",
      conv2d_config{out_channels, out_channels, 3, 1, 1, false}, gen);
  main_.emplace<batchnorm2d>(name_ + ".bn2", out_channels);

  if (stride != 1 || in_channels != out_channels) {
    projection_.emplace(name_ + ".proj");
    projection_->emplace<conv2d>(
        name_ + ".proj_conv",
        conv2d_config{in_channels, out_channels, 1, stride, 0, false}, gen);
    projection_->emplace<batchnorm2d>(name_ + ".proj_bn", out_channels);
  }
}

shape residual_block::infer_output_shape(const shape& in) const {
  const shape main_out = main_.infer_output_shape(in);
  const shape skip_out =
      projection_ ? projection_->infer_output_shape(in) : in;
  if (main_out != skip_out) {
    throw shape_error(
        name_ + ": residual add mismatch, main path produces " +
        main_out.to_string() + " but skip path carries " +
        skip_out.to_string() +
        (projection_ ? "" : " (identity skip needs matching shapes)"));
  }
  return out_relu_.infer_output_shape(main_out);
}

void residual_block::for_each_child(
    const std::function<void(const layer&)>& fn) const {
  fn(main_);
  if (projection_) fn(*projection_);
  fn(out_relu_);
}

tensor residual_block::forward(const tensor& x, forward_ctx& ctx) {
  tensor main_out = main_.forward(x, ctx);
  tensor skip_out = projection_ ? projection_->forward(x, ctx) : x;
  tensor sum = ops::add(main_out, skip_out);
  if (ctx.trace != nullptr) {
    layer_trace_entry e;
    e.kind = layer_kind::residual_add;
    e.name = name_ + ".add";
    e.in_numel = main_out.numel() * 2;
    e.out_numel = sum.numel();
    ctx.trace->layers.push_back(std::move(e));
  }
  return out_relu_.forward(sum, ctx);
}

tensor residual_block::backward(const tensor& grad_out) {
  tensor g = out_relu_.backward(grad_out);
  tensor g_main = main_.backward(g);
  tensor g_skip = projection_ ? projection_->backward(g) : g;
  return ops::add(g_main, g_skip);
}

void residual_block::collect_params(std::vector<parameter*>& out) {
  main_.collect_params(out);
  if (projection_) projection_->collect_params(out);
}

void residual_block::collect_state(std::vector<tensor*>& out) {
  main_.collect_state(out);
  if (projection_) projection_->collect_state(out);
}

dense_block::dense_block(std::string name, std::size_t in_channels,
                         std::size_t growth, std::size_t steps, rng& gen)
    : name_(std::move(name)), in_channels_(in_channels), growth_(growth) {
  ADVH_CHECK(steps > 0 && growth > 0);
  for (std::size_t s = 0; s < steps; ++s) {
    const std::size_t c_in = in_channels + s * growth;
    auto unit =
        std::make_unique<sequential>(name_ + ".unit" + std::to_string(s));
    unit->emplace<batchnorm2d>(name_ + ".bn" + std::to_string(s), c_in);
    unit->emplace<relu>(name_ + ".relu" + std::to_string(s));
    unit->emplace<conv2d>(name_ + ".conv" + std::to_string(s),
                          conv2d_config{c_in, growth, 3, 1, 1, false}, gen);
    units_.push_back(std::move(unit));
  }
}

shape dense_block::infer_output_shape(const shape& in) const {
  shape cur = in;
  for (const auto& unit : units_) {
    const shape y = unit->infer_output_shape(cur);
    if (y.rank() != 4 || y[0] != cur[0] || y[1] != growth_ ||
        y[2] != cur[2] || y[3] != cur[3]) {
      throw shape_error(unit->name() + ": dense unit must produce " +
                        std::to_string(growth_) +
                        " growth channels at the block's spatial size, " +
                        "would produce " + y.to_string() + " from " +
                        cur.to_string());
    }
    cur = shape{cur[0], cur[1] + growth_, cur[2], cur[3]};
  }
  return cur;
}

void dense_block::for_each_child(
    const std::function<void(const layer&)>& fn) const {
  for (const auto& u : units_) fn(*u);
}

tensor dense_block::forward(const tensor& x, forward_ctx& ctx) {
  if (ctx.grad) unit_inputs_.clear();
  tensor cur = x;
  for (auto& unit : units_) {
    if (ctx.grad) unit_inputs_.push_back(cur);
    tensor y = unit->forward(cur, ctx);
    cur = cat_channels(cur, y);
    if (ctx.trace != nullptr) {
      layer_trace_entry e;
      e.kind = layer_kind::concat;
      e.name = unit->name() + ".cat";
      e.in_numel = cur.numel();
      e.out_numel = cur.numel();
      ctx.trace->layers.push_back(std::move(e));
    }
  }
  return cur;
}

tensor dense_block::backward(const tensor& grad_out) {
  ADVH_CHECK_MSG(unit_inputs_.size() == units_.size(),
                 "backward before forward");
  tensor g = grad_out;
  for (std::size_t s = units_.size(); s-- > 0;) {
    const std::size_t c_in = unit_inputs_[s].dims()[1];
    auto [g_prev, g_unit] = split_channels(g, c_in);
    tensor g_from_unit = units_[s]->backward(g_unit);
    g = ops::add(g_prev, g_from_unit);
  }
  return g;
}

void dense_block::collect_params(std::vector<parameter*>& out) {
  for (auto& u : units_) u->collect_params(out);
}

void dense_block::collect_state(std::vector<tensor*>& out) {
  for (auto& u : units_) u->collect_state(out);
}

std::unique_ptr<sequential> make_dense_transition(std::string name,
                                                  std::size_t in_channels,
                                                  std::size_t out_channels,
                                                  rng& gen) {
  auto s = std::make_unique<sequential>(name);
  s->emplace<batchnorm2d>(name + ".bn", in_channels);
  s->emplace<relu>(name + ".relu");
  s->emplace<conv2d>(name + ".conv",
                     conv2d_config{in_channels, out_channels, 1, 1, 0, false},
                     gen);
  s->emplace<avgpool2d>(name + ".pool", 2);
  return s;
}

std::unique_ptr<sequential> make_separable_block(std::string name,
                                                 std::size_t in_channels,
                                                 std::size_t out_channels,
                                                 std::size_t stride, rng& gen) {
  auto s = std::make_unique<sequential>(name);
  s->emplace<depthwise_conv2d>(
      name + ".dw", depthwise_conv2d_config{in_channels, 3, stride, 1, false},
      gen);
  s->emplace<batchnorm2d>(name + ".bn1", in_channels);
  s->emplace<relu>(name + ".relu1", 6.0f);
  s->emplace<conv2d>(name + ".pw",
                     conv2d_config{in_channels, out_channels, 1, 1, 0, false},
                     gen);
  s->emplace<batchnorm2d>(name + ".bn2", out_channels);
  s->emplace<relu>(name + ".relu2", 6.0f);
  return s;
}

}  // namespace advh::nn
