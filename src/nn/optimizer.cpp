#include "nn/optimizer.hpp"

#include <cmath>

namespace advh::nn {

sgd::sgd(std::vector<parameter*> params, float lr, float momentum,
         float weight_decay)
    : optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (parameter* p : params_) velocity_.emplace_back(p->value.dims());
}

void sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto w = params_[i]->value.data();
    auto g = params_[i]->grad.data();
    auto v = velocity_[i].data();
    for (std::size_t j = 0; j < w.size(); ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      v[j] = momentum_ * v[j] + grad;
      w[j] -= lr_ * v[j];
    }
  }
}

adam::adam(std::vector<parameter*> params, float lr, float beta1, float beta2,
           float eps)
    : optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (parameter* p : params_) {
    m_.emplace_back(p->value.dims());
    v_.emplace_back(p->value.dims());
  }
}

void adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto w = params_[i]->value.data();
    auto g = params_[i]->grad.data();
    auto m = m_[i].data();
    auto v = v_[i].data();
    for (std::size_t j = 0; j < w.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace advh::nn
