// Pooling layers: max, average, and global average.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace advh::nn {

class maxpool2d final : public layer {
 public:
  maxpool2d(std::string name, std::size_t window, std::size_t stride = 0)
      : name_(std::move(name)),
        window_(window),
        stride_(stride == 0 ? window : stride) {}

  tensor forward(const tensor& x, forward_ctx& ctx) override;
  tensor backward(const tensor& grad_out) override;

  layer_kind kind() const override { return layer_kind::maxpool2d; }
  std::string name() const override { return name_; }
  shape infer_output_shape(const shape& in) const override;
  trace_contract trace_info() const override { return {true, false, false}; }

 private:
  std::string name_;
  std::size_t window_;
  std::size_t stride_;
  shape in_shape_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
};

class avgpool2d final : public layer {
 public:
  avgpool2d(std::string name, std::size_t window, std::size_t stride = 0)
      : name_(std::move(name)),
        window_(window),
        stride_(stride == 0 ? window : stride) {}

  tensor forward(const tensor& x, forward_ctx& ctx) override;
  tensor backward(const tensor& grad_out) override;

  layer_kind kind() const override { return layer_kind::avgpool2d; }
  std::string name() const override { return name_; }
  shape infer_output_shape(const shape& in) const override;
  trace_contract trace_info() const override { return {true, false, false}; }

 private:
  std::string name_;
  std::size_t window_;
  std::size_t stride_;
  shape in_shape_;
};

/// Reduces (N, C, H, W) to (N, C) by spatial averaging.
class global_avgpool final : public layer {
 public:
  explicit global_avgpool(std::string name) : name_(std::move(name)) {}

  tensor forward(const tensor& x, forward_ctx& ctx) override;
  tensor backward(const tensor& grad_out) override;

  layer_kind kind() const override { return layer_kind::global_avgpool; }
  std::string name() const override { return name_; }
  shape infer_output_shape(const shape& in) const override;
  trace_contract trace_info() const override { return {true, false, false}; }

 private:
  std::string name_;
  shape in_shape_;
};

}  // namespace advh::nn
