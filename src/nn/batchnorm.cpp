#include "nn/batchnorm.hpp"

#include <cmath>

#include "common/error.hpp"

namespace advh::nn {

batchnorm2d::batchnorm2d(std::string name, std::size_t channels,
                         float momentum, float eps)
    : name_(std::move(name)),
      channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(name_ + ".gamma", tensor(shape{channels}, 1.0f)),
      beta_(name_ + ".beta", tensor(shape{channels})),
      running_mean_(shape{channels}),
      running_var_(shape{channels}, 1.0f) {
  ADVH_CHECK(channels_ > 0);
}

shape batchnorm2d::infer_output_shape(const shape& in) const {
  if (in.rank() != 4) {
    throw shape_error(name_ + ": batchnorm2d expects NCHW input, got " +
                      in.to_string());
  }
  if (in[1] != channels_) {
    throw shape_error(name_ + ": channel mismatch, normalises " +
                      std::to_string(channels_) +
                      " channels but would receive " + std::to_string(in[1]));
  }
  return in;
}

tensor batchnorm2d::forward(const tensor& x, forward_ctx& ctx) {
  ADVH_CHECK_MSG(x.dims().rank() == 4, name_ + ": expects NCHW");
  ADVH_CHECK_MSG(x.dims()[1] == channels_, name_ + ": channel mismatch");
  const std::size_t n = x.dims()[0], h = x.dims()[2], w = x.dims()[3];
  const std::size_t per_channel = n * h * w;
  ADVH_CHECK(per_channel > 0);

  tensor out(x.dims());

  std::vector<float> mean(channels_, 0.0f);
  std::vector<float> var(channels_, 0.0f);

  if (ctx.training) {
    for (std::size_t c = 0; c < channels_; ++c) {
      double sum = 0.0;
      for (std::size_t b = 0; b < n; ++b)
        for (std::size_t y = 0; y < h; ++y)
          for (std::size_t xx = 0; xx < w; ++xx) sum += x.at(b, c, y, xx);
      const double m = sum / static_cast<double>(per_channel);
      double v = 0.0;
      for (std::size_t b = 0; b < n; ++b)
        for (std::size_t y = 0; y < h; ++y)
          for (std::size_t xx = 0; xx < w; ++xx) {
            const double d = x.at(b, c, y, xx) - m;
            v += d * d;
          }
      v /= static_cast<double>(per_channel);
      mean[c] = static_cast<float>(m);
      var[c] = static_cast<float>(v);
      running_mean_[c] =
          (1.0f - momentum_) * running_mean_[c] + momentum_ * mean[c];
      running_var_[c] =
          (1.0f - momentum_) * running_var_[c] + momentum_ * var[c];
    }
  } else {
    for (std::size_t c = 0; c < channels_; ++c) {
      mean[c] = running_mean_[c];
      var[c] = running_var_[c];
    }
  }

  if (ctx.grad) {
    cached_training_ = ctx.training;
    batch_mean_ = mean;
    batch_var_ = var;
    input_ = x;
    xhat_ = tensor(x.dims());
  }
  for (std::size_t c = 0; c < channels_; ++c) {
    const float inv_std = 1.0f / std::sqrt(var[c] + eps_);
    for (std::size_t b = 0; b < n; ++b)
      for (std::size_t y = 0; y < h; ++y)
        for (std::size_t xx = 0; xx < w; ++xx) {
          const float xh = (x.at(b, c, y, xx) - mean[c]) * inv_std;
          if (ctx.grad) xhat_.at(b, c, y, xx) = xh;
          out.at(b, c, y, xx) = gamma_.value[c] * xh + beta_.value[c];
        }
  }

  if (ctx.trace != nullptr) {
    layer_trace_entry e;
    e.kind = layer_kind::batchnorm2d;
    e.name = name_;
    e.in_numel = x.numel();
    e.out_numel = out.numel();
    e.weight_bytes = 4 * channels_ * sizeof(float);  // gamma/beta/mean/var
    ctx.trace->layers.push_back(std::move(e));
  }
  return out;
}

tensor batchnorm2d::backward(const tensor& grad_out) {
  ADVH_CHECK_MSG(!input_.empty(), "backward before forward");
  const std::size_t n = input_.dims()[0], h = input_.dims()[2],
                    w = input_.dims()[3];
  const auto m = static_cast<double>(n * h * w);
  tensor grad_in(input_.dims());

  for (std::size_t c = 0; c < channels_; ++c) {
    const double inv_std = 1.0 / std::sqrt(batch_var_[c] + eps_);
    double sum_g = 0.0;
    double sum_g_xhat = 0.0;
    for (std::size_t b = 0; b < n; ++b)
      for (std::size_t y = 0; y < h; ++y)
        for (std::size_t xx = 0; xx < w; ++xx) {
          const double g = grad_out.at(b, c, y, xx);
          sum_g += g;
          sum_g_xhat += g * xhat_.at(b, c, y, xx);
        }
    gamma_.grad[c] += static_cast<float>(sum_g_xhat);
    beta_.grad[c] += static_cast<float>(sum_g);

    if (cached_training_) {
      // Full batch-norm gradient (training statistics).
      for (std::size_t b = 0; b < n; ++b)
        for (std::size_t y = 0; y < h; ++y)
          for (std::size_t xx = 0; xx < w; ++xx) {
            const double g = grad_out.at(b, c, y, xx);
            const double xh = xhat_.at(b, c, y, xx);
            const double gi = gamma_.value[c] * inv_std *
                              (g - sum_g / m - xh * sum_g_xhat / m);
            grad_in.at(b, c, y, xx) = static_cast<float>(gi);
          }
    } else {
      // Inference mode (used by attacks against a frozen model): running
      // stats are constants, so the gradient is a plain affine pass-through.
      for (std::size_t b = 0; b < n; ++b)
        for (std::size_t y = 0; y < h; ++y)
          for (std::size_t xx = 0; xx < w; ++xx) {
            grad_in.at(b, c, y, xx) = static_cast<float>(
                grad_out.at(b, c, y, xx) * gamma_.value[c] * inv_std);
          }
    }
  }
  return grad_in;
}

void batchnorm2d::collect_params(std::vector<parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

void batchnorm2d::collect_state(std::vector<tensor*>& out) {
  out.push_back(&gamma_.value);
  out.push_back(&beta_.value);
  out.push_back(&running_mean_);
  out.push_back(&running_var_);
}

}  // namespace advh::nn
