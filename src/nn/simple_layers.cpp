#include "nn/simple_layers.hpp"

#include "common/error.hpp"

namespace advh::nn {

shape flatten::infer_output_shape(const shape& in) const {
  if (in.rank() < 2) {
    throw shape_error(name_ + ": flatten expects rank >= 2, got " +
                      in.to_string());
  }
  return shape{in[0], in.numel() / in[0]};
}

tensor flatten::forward(const tensor& x, forward_ctx& ctx) {
  ADVH_CHECK_MSG(x.dims().rank() >= 2, name_ + ": expects rank >= 2");
  if (ctx.grad) in_shape_ = x.dims();
  const std::size_t batch = x.dims()[0];
  tensor out = x.reshaped(shape{batch, x.numel() / batch});
  if (ctx.trace != nullptr) {
    layer_trace_entry e;
    e.kind = layer_kind::flatten;
    e.name = name_;
    e.in_numel = x.numel();
    e.out_numel = out.numel();
    ctx.trace->layers.push_back(std::move(e));
  }
  return out;
}

tensor flatten::backward(const tensor& grad_out) {
  ADVH_CHECK_MSG(in_shape_.rank() >= 2, "backward before forward");
  return grad_out.reshaped(in_shape_);
}

tensor dropout::forward(const tensor& x, forward_ctx& ctx) {
  ADVH_CHECK(rate_ >= 0.0f && rate_ < 1.0f);
  if (ctx.grad) cached_training_ = ctx.training;
  if (!ctx.training || rate_ == 0.0f) {
    if (ctx.trace != nullptr) {
      layer_trace_entry e;
      e.kind = layer_kind::dropout;
      e.name = name_;
      e.in_numel = x.numel();
      e.out_numel = x.numel();
      ctx.trace->layers.push_back(std::move(e));
    }
    return x;
  }
  mask_ = tensor(x.dims());
  tensor out = x;
  const float keep = 1.0f - rate_;
  auto m = mask_.data();
  auto o = out.data();
  for (std::size_t i = 0; i < o.size(); ++i) {
    const bool kept = gen_.bernoulli(keep);
    m[i] = kept ? 1.0f / keep : 0.0f;
    o[i] *= m[i];
  }
  return out;
}

tensor dropout::backward(const tensor& grad_out) {
  if (!cached_training_ || rate_ == 0.0f) return grad_out;
  ADVH_CHECK_MSG(!mask_.empty(), "backward before forward");
  ADVH_CHECK(grad_out.dims() == mask_.dims());
  tensor grad_in = grad_out;
  auto g = grad_in.data();
  auto m = mask_.data();
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= m[i];
  return grad_in;
}

}  // namespace advh::nn
