#include "nn/activations.hpp"

#include "common/error.hpp"

namespace advh::nn {

tensor relu::forward(const tensor& x, forward_ctx& ctx) {
  if (ctx.grad) input_ = x;
  tensor out = x;
  for (auto& v : out.data()) {
    if (v < 0.0f) v = 0.0f;
    if (clip_ > 0.0f && v > clip_) v = clip_;
  }

  if (ctx.trace != nullptr) {
    ADVH_CHECK_MSG(x.dims().rank() < 1 || x.dims()[0] == 1,
                   "tracing requires batch size 1");
    layer_trace_entry e;
    e.kind = layer_kind::relu;
    e.name = name_;
    e.in_numel = x.numel();
    e.out_numel = out.numel();
    e.active_outputs = nonzero_indices(out);
    ctx.trace->layers.push_back(std::move(e));
  }
  return out;
}

tensor relu::backward(const tensor& grad_out) {
  ADVH_CHECK_MSG(!input_.empty(), "backward before forward");
  ADVH_CHECK(grad_out.dims() == input_.dims());
  tensor grad_in = grad_out;
  auto g = grad_in.data();
  auto x = input_.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    const bool pass = x[i] > 0.0f && (clip_ <= 0.0f || x[i] < clip_);
    if (!pass) g[i] = 0.0f;
  }
  return grad_in;
}

}  // namespace advh::nn
