#include "nn/trainer.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace advh::nn {

tensor gather_batch(const tensor& images,
                    const std::vector<std::size_t>& indices) {
  ADVH_CHECK(images.dims().rank() == 4);
  const std::size_t c = images.dims()[1], h = images.dims()[2],
                    w = images.dims()[3];
  const std::size_t stride = c * h * w;
  tensor out(shape{indices.size(), c, h, w});
  for (std::size_t i = 0; i < indices.size(); ++i) {
    ADVH_CHECK(indices[i] < images.dims()[0]);
    const float* src = images.data().data() + indices[i] * stride;
    float* dst = out.data().data() + i * stride;
    for (std::size_t j = 0; j < stride; ++j) dst[j] = src[j];
  }
  return out;
}

tensor single_example(const tensor& images, std::size_t index) {
  return gather_batch(images, {index});
}

train_result train_classifier(model& m, const tensor& images,
                              const std::vector<std::size_t>& labels,
                              const train_config& cfg) {
  ADVH_CHECK(images.dims().rank() == 4);
  ADVH_CHECK_MSG(images.dims()[0] == labels.size(),
                 "images and labels must align");
  ADVH_CHECK(cfg.batch_size > 0 && cfg.epochs > 0);

  const std::size_t n = labels.size();
  rng shuffler(cfg.shuffle_seed);
  sgd opt(m.params(), cfg.lr, cfg.momentum, cfg.weight_decay);

  train_result result;
  float lr = cfg.lr;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    opt.set_lr(lr);
    auto order = shuffler.permutation(n);
    double loss_sum = 0.0;
    std::size_t hits = 0;
    std::size_t batches = 0;

    for (std::size_t start = 0; start < n; start += cfg.batch_size) {
      const std::size_t end = std::min(n, start + cfg.batch_size);
      std::vector<std::size_t> batch_idx(order.begin() + start,
                                         order.begin() + end);
      tensor x = gather_batch(images, batch_idx);
      std::vector<std::size_t> y(batch_idx.size());
      for (std::size_t i = 0; i < batch_idx.size(); ++i) {
        y[i] = labels[batch_idx[i]];
      }

      forward_ctx ctx;
      ctx.training = true;
      opt.zero_grad();
      tensor logits = m.forward(x, ctx);
      auto loss = softmax_cross_entropy(logits, y);
      m.backward(loss.grad_logits);
      opt.step();

      loss_sum += loss.value;
      ++batches;
      const auto preds = ops::argmax_rows(logits);
      for (std::size_t i = 0; i < preds.size(); ++i) {
        if (preds[i] == y[i]) ++hits;
      }
    }

    const double mean_loss = loss_sum / static_cast<double>(batches);
    const double acc = static_cast<double>(hits) / static_cast<double>(n);
    result.epoch_loss.push_back(mean_loss);
    result.epoch_accuracy.push_back(acc);
    if (cfg.on_epoch) cfg.on_epoch(epoch, mean_loss, acc);
    lr *= cfg.lr_decay;
  }
  return result;
}

}  // namespace advh::nn
