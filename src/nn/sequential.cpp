#include "nn/sequential.hpp"

#include "common/error.hpp"

namespace advh::nn {

sequential& sequential::add(layer_ptr l) {
  ADVH_CHECK(l != nullptr);
  layers_.push_back(std::move(l));
  return *this;
}

tensor sequential::forward(const tensor& x, forward_ctx& ctx) {
  tensor cur = x;
  for (auto& l : layers_) cur = l->forward(cur, ctx);
  return cur;
}

tensor sequential::backward(const tensor& grad_out) {
  tensor cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = (*it)->backward(cur);
  }
  return cur;
}

void sequential::collect_params(std::vector<parameter*>& out) {
  for (auto& l : layers_) l->collect_params(out);
}

void sequential::collect_state(std::vector<tensor*>& out) {
  for (auto& l : layers_) l->collect_state(out);
}

layer& sequential::at(std::size_t i) {
  ADVH_CHECK(i < layers_.size());
  return *layers_[i];
}

}  // namespace advh::nn
