#include "nn/sequential.hpp"

#include "common/error.hpp"

namespace advh::nn {

sequential& sequential::add(layer_ptr l) {
  ADVH_CHECK(l != nullptr);
  layers_.push_back(std::move(l));
  return *this;
}

tensor sequential::forward(const tensor& x, forward_ctx& ctx) {
  tensor cur = x;
  for (auto& l : layers_) cur = l->forward(cur, ctx);
  return cur;
}

tensor sequential::backward(const tensor& grad_out) {
  tensor cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = (*it)->backward(cur);
  }
  return cur;
}

void sequential::collect_params(std::vector<parameter*>& out) {
  for (auto& l : layers_) l->collect_params(out);
}

void sequential::collect_state(std::vector<tensor*>& out) {
  for (auto& l : layers_) l->collect_state(out);
}

layer& sequential::at(std::size_t i) {
  ADVH_CHECK(i < layers_.size());
  return *layers_[i];
}

const layer& sequential::at(std::size_t i) const {
  ADVH_CHECK(i < layers_.size());
  return *layers_[i];
}

shape sequential::infer_output_shape(const shape& in) const {
  shape cur = in;
  for (const auto& l : layers_) cur = l->infer_output_shape(cur);
  return cur;
}

trace_contract sequential::trace_info() const {
  trace_contract agg;
  for (const auto& l : layers_) {
    const trace_contract c = l->trace_info();
    agg.emits_entry = agg.emits_entry || c.emits_entry;
    agg.records_active_inputs =
        agg.records_active_inputs || c.records_active_inputs;
    agg.records_active_outputs =
        agg.records_active_outputs || c.records_active_outputs;
  }
  return agg;
}

void sequential::for_each_child(
    const std::function<void(const layer&)>& fn) const {
  for (const auto& l : layers_) fn(*l);
}

}  // namespace advh::nn
