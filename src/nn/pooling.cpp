#include "nn/pooling.hpp"

#include <limits>

#include "common/error.hpp"

namespace advh::nn {

namespace {
shape infer_pool_shape(const std::string& name, const shape& in,
                       std::size_t window, std::size_t stride) {
  if (in.rank() != 4) {
    throw shape_error(name + ": pooling expects NCHW input, got " +
                      in.to_string());
  }
  if (in[2] < window || in[3] < window) {
    throw shape_error(name + ": " + std::to_string(window) + "x" +
                      std::to_string(window) + " window does not fit input " +
                      in.to_string());
  }
  return shape{in[0], in[1], (in[2] - window) / stride + 1,
               (in[3] - window) / stride + 1};
}

void record_pool_trace(forward_ctx& ctx, layer_kind kind,
                       const std::string& name, const tensor& x,
                       const tensor& out) {
  if (ctx.trace == nullptr) return;
  layer_trace_entry e;
  e.kind = kind;
  e.name = name;
  e.in_numel = x.numel();
  e.out_numel = out.numel();
  ctx.trace->layers.push_back(std::move(e));
}
}  // namespace

shape maxpool2d::infer_output_shape(const shape& in) const {
  return infer_pool_shape(name_, in, window_, stride_);
}

tensor maxpool2d::forward(const tensor& x, forward_ctx& ctx) {
  ADVH_CHECK_MSG(x.dims().rank() == 4, name_ + ": expects NCHW");
  const std::size_t n = x.dims()[0], c = x.dims()[1], h = x.dims()[2],
                    w = x.dims()[3];
  ADVH_CHECK(h >= window_ && w >= window_);
  const std::size_t oh = (h - window_) / stride_ + 1;
  const std::size_t ow = (w - window_) / stride_ + 1;

  if (ctx.grad) in_shape_ = x.dims();
  tensor out(shape{n, c, oh, ow});
  std::vector<std::size_t> argmax(out.numel(), 0);

  const auto st = x.dims().strides();
  std::size_t oidx = 0;
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t xx = 0; xx < ow; ++xx, ++oidx) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < window_; ++ky) {
            for (std::size_t kx = 0; kx < window_; ++kx) {
              const std::size_t iy = y * stride_ + ky;
              const std::size_t ix = xx * stride_ + kx;
              const std::size_t idx =
                  b * st[0] + ch * st[1] + iy * st[2] + ix * st[3];
              const float v = x.data()[idx];
              if (v > best) {
                best = v;
                best_idx = idx;
              }
            }
          }
          out.data()[oidx] = best;
          argmax[oidx] = best_idx;
        }
      }
    }
  }
  if (ctx.grad) argmax_ = std::move(argmax);
  record_pool_trace(ctx, layer_kind::maxpool2d, name_, x, out);
  return out;
}

tensor maxpool2d::backward(const tensor& grad_out) {
  ADVH_CHECK_MSG(!argmax_.empty(), "backward before forward");
  ADVH_CHECK(grad_out.numel() == argmax_.size());
  tensor grad_in(in_shape_);
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    grad_in.data()[argmax_[i]] += grad_out.data()[i];
  }
  return grad_in;
}

shape avgpool2d::infer_output_shape(const shape& in) const {
  return infer_pool_shape(name_, in, window_, stride_);
}

tensor avgpool2d::forward(const tensor& x, forward_ctx& ctx) {
  ADVH_CHECK_MSG(x.dims().rank() == 4, name_ + ": expects NCHW");
  const std::size_t n = x.dims()[0], c = x.dims()[1], h = x.dims()[2],
                    w = x.dims()[3];
  ADVH_CHECK(h >= window_ && w >= window_);
  const std::size_t oh = (h - window_) / stride_ + 1;
  const std::size_t ow = (w - window_) / stride_ + 1;

  if (ctx.grad) in_shape_ = x.dims();
  tensor out(shape{n, c, oh, ow});
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t xx = 0; xx < ow; ++xx) {
          double acc = 0.0;
          for (std::size_t ky = 0; ky < window_; ++ky) {
            for (std::size_t kx = 0; kx < window_; ++kx) {
              acc += x.at(b, ch, y * stride_ + ky, xx * stride_ + kx);
            }
          }
          out.at(b, ch, y, xx) = static_cast<float>(acc) * inv;
        }
      }
    }
  }
  record_pool_trace(ctx, layer_kind::avgpool2d, name_, x, out);
  return out;
}

tensor avgpool2d::backward(const tensor& grad_out) {
  ADVH_CHECK_MSG(in_shape_.rank() == 4, "backward before forward");
  const std::size_t oh = grad_out.dims()[2];
  const std::size_t ow = grad_out.dims()[3];
  tensor grad_in(in_shape_);
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  for (std::size_t b = 0; b < in_shape_[0]; ++b) {
    for (std::size_t ch = 0; ch < in_shape_[1]; ++ch) {
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t xx = 0; xx < ow; ++xx) {
          const float g = grad_out.at(b, ch, y, xx) * inv;
          for (std::size_t ky = 0; ky < window_; ++ky) {
            for (std::size_t kx = 0; kx < window_; ++kx) {
              grad_in.at(b, ch, y * stride_ + ky, xx * stride_ + kx) += g;
            }
          }
        }
      }
    }
  }
  return grad_in;
}

shape global_avgpool::infer_output_shape(const shape& in) const {
  if (in.rank() != 4) {
    throw shape_error(name_ + ": global_avgpool expects NCHW input, got " +
                      in.to_string());
  }
  return shape{in[0], in[1]};
}

tensor global_avgpool::forward(const tensor& x, forward_ctx& ctx) {
  ADVH_CHECK_MSG(x.dims().rank() == 4, name_ + ": expects NCHW");
  const std::size_t n = x.dims()[0], c = x.dims()[1], h = x.dims()[2],
                    w = x.dims()[3];
  if (ctx.grad) in_shape_ = x.dims();
  tensor out(shape{n, c});
  const float inv = 1.0f / static_cast<float>(h * w);
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      double acc = 0.0;
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t xx = 0; xx < w; ++xx) acc += x.at(b, ch, y, xx);
      }
      out.at(b, ch) = static_cast<float>(acc) * inv;
    }
  }
  record_pool_trace(ctx, layer_kind::global_avgpool, name_, x, out);
  return out;
}

tensor global_avgpool::backward(const tensor& grad_out) {
  ADVH_CHECK_MSG(in_shape_.rank() == 4, "backward before forward");
  tensor grad_in(in_shape_);
  const std::size_t h = in_shape_[2], w = in_shape_[3];
  const float inv = 1.0f / static_cast<float>(h * w);
  for (std::size_t b = 0; b < in_shape_[0]; ++b) {
    for (std::size_t ch = 0; ch < in_shape_[1]; ++ch) {
      const float g = grad_out.at(b, ch) * inv;
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t xx = 0; xx < w; ++xx) grad_in.at(b, ch, y, xx) = g;
      }
    }
  }
  return grad_in;
}

}  // namespace advh::nn
