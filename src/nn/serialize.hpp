// Binary (de)serialization of model state.
//
// Format: magic, version, tensor count, then per tensor the element count
// and raw float32 payload. Architecture is reconstructed by the model zoo
// from its name, so only state tensors are stored — mirroring how the
// benches cache trained scenario models between runs.
#pragma once

#include <string>

#include "nn/model.hpp"

namespace advh::nn {

/// Writes all persistent tensors (weights + batch-norm statistics).
void save_state(model& m, const std::string& path);

/// Loads state saved by save_state; tensor count and shapes must match.
/// Unless `verify` is false, the loaded model is run through the static
/// verifier (src/analysis) and analysis::verification_error is thrown when
/// the graph or the loaded parameters fail it — a model whose data flow is
/// broken must never feed the HPC templates.
void load_state(model& m, const std::string& path, bool verify = true);

/// True if `path` exists and carries the serialization magic.
bool is_state_file(const std::string& path);

}  // namespace advh::nn
