// 2-D convolution (NCHW, OIHW weights) via im2col + GEMM.
#pragma once

#include <optional>

#include "nn/layer.hpp"
#include "tensor/im2col.hpp"

namespace advh::nn {

struct conv2d_config {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t pad = 1;
  bool bias = true;
};

class conv2d final : public layer {
 public:
  /// Initialises weights with He-normal scaling using `gen`.
  conv2d(std::string name, const conv2d_config& cfg, rng& gen);

  tensor forward(const tensor& x, forward_ctx& ctx) override;
  tensor backward(const tensor& grad_out) override;
  void collect_params(std::vector<parameter*>& out) override;

  layer_kind kind() const override { return layer_kind::conv2d; }
  std::string name() const override { return name_; }
  shape infer_output_shape(const shape& in) const override;
  trace_contract trace_info() const override { return {true, true, false}; }

  const conv2d_config& config() const noexcept { return cfg_; }
  parameter& weight() noexcept { return weight_; }
  parameter* bias() noexcept { return bias_ ? &*bias_ : nullptr; }

 private:
  std::string name_;
  conv2d_config cfg_;
  parameter weight_;             // (out, in*k*k) as a GEMM-ready matrix
  std::optional<parameter> bias_;

  // forward cache
  tensor input_;
  std::vector<tensor> cols_;  // per batch element
};

}  // namespace advh::nn
