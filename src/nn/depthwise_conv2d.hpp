// Depthwise 2-D convolution (one filter per input channel) — the spatial
// half of the depthwise-separable blocks used by the EfficientNet-style
// scenario model.
#pragma once

#include <optional>

#include "nn/layer.hpp"

namespace advh::nn {

struct depthwise_conv2d_config {
  std::size_t channels = 0;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t pad = 1;
  bool bias = true;
};

class depthwise_conv2d final : public layer {
 public:
  depthwise_conv2d(std::string name, const depthwise_conv2d_config& cfg,
                   rng& gen);

  tensor forward(const tensor& x, forward_ctx& ctx) override;
  tensor backward(const tensor& grad_out) override;
  void collect_params(std::vector<parameter*>& out) override;

  layer_kind kind() const override { return layer_kind::depthwise_conv2d; }
  std::string name() const override { return name_; }
  shape infer_output_shape(const shape& in) const override;
  trace_contract trace_info() const override { return {true, true, false}; }

  const depthwise_conv2d_config& config() const noexcept { return cfg_; }

 private:
  std::string name_;
  depthwise_conv2d_config cfg_;
  parameter weight_;  // (channels, k*k)
  std::optional<parameter> bias_;
  tensor input_;
};

}  // namespace advh::nn
