#include "analysis/verifier.hpp"

#include "analysis/passes.hpp"
#include "analysis/walk.hpp"
#include "common/logging.hpp"

namespace advh::analysis {

verification_report verify_model(nn::model& m, const verify_options& opts) {
  verification_report report;
  report.model_name = m.name();
  report.input_shape = m.input_shape().to_string();
  report.num_classes = m.num_classes();

  const std::vector<walk_entry> graph = walk_graph(m.net());
  for (const walk_entry& e : graph) report.layers_checked += e.leaf ? 1 : 0;

  if (opts.check_shapes) detail::run_shape_pass(m, report);
  if (opts.check_params) detail::run_param_pass(m, graph, report);
  if (opts.check_trace) detail::run_trace_pass(graph, report);
  if (opts.check_structure) detail::run_structure_pass(m, graph, report);
  return report;
}

void ensure_verified(nn::model& m, const std::string& context,
                     const verify_options& opts) {
  verification_report report = verify_model(m, opts);
  if (report.has_errors()) {
    throw verification_error(std::move(report), context);
  }
  if (report.warning_count() > 0) {
    log::warn(context, ": model ", m.name(), " verified with ",
              report.warning_count(), " warning(s)\n", report.to_text());
  }
}

}  // namespace advh::analysis
