#include "analysis/verifier.hpp"

#include "analysis/passes.hpp"
#include "analysis/walk.hpp"
#include "common/logging.hpp"

namespace advh::analysis {

verification_report verify_model(nn::model& m, const verify_options& opts) {
  verification_report report;
  report.model_name = m.name();
  report.input_shape = m.input_shape().to_string();
  report.num_classes = m.num_classes();

  walk_result walked = walk_graph_checked(m.net());
  const std::vector<walk_entry>& graph = walked.entries;
  for (const walk_entry& e : graph) report.layers_checked += e.leaf ? 1 : 0;
  for (const walk_anomaly& a : walked.anomalies) {
    const bool cycle = a.k == walk_anomaly::kind::cycle;
    report.add(severity::error,
               cycle ? diag_code::graph_cycle : diag_code::layer_aliased,
               a.top_index, a.node_name,
               cycle ? "layer is reachable from itself; the graph walk "
                       "refused to recurse into it"
                     : "layer object is registered under more than one "
                       "parent; its computation would be double-counted");
  }

  if (opts.check_shapes) detail::run_shape_pass(m, report);
  if (opts.check_params) detail::run_param_pass(m, graph, report);
  if (opts.check_trace) detail::run_trace_pass(graph, report);
  if (opts.check_structure) detail::run_structure_pass(m, graph, report);
  return report;
}

void ensure_verified(nn::model& m, const std::string& context,
                     const verify_options& opts) {
  verification_report report = verify_model(m, opts);
  if (report.has_errors()) {
    throw verification_error(std::move(report), context);
  }
  if (report.warning_count() > 0) {
    log::warn(context, ": model ", m.name(), " verified with ",
              report.warning_count(), " warning(s)\n", report.to_text());
  }
}

}  // namespace advh::analysis
