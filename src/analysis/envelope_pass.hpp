// HPC envelope pass: abstract-interpretation cross-check of fitted
// templates (advh_check codes 3xx).
//
// The abstract trace of the model (analysis/abstract_trace) fed through
// the uarch static cost model (uarch/static_model) yields, per event, a
// feasibility interval covering every count the simulator can produce for
// *any* input of the configured shape. A fitted GMM component whose mass
// (mean ± sigma_span standard deviations) lies entirely outside that
// interval — widened by margins absorbing measurement noise — describes
// behaviour the model cannot exhibit: a miscalibrated, drifted or
// tampered template, caught offline with zero measurements.
#pragma once

#include "analysis/check.hpp"
#include "core/detector.hpp"
#include "nn/model.hpp"
#include "uarch/static_model.hpp"

namespace advh::analysis {

struct envelope_options {
  /// Cost model the templates were fitted under; must match the
  /// measurement backend's trace_gen_config or the pass will flag honest
  /// templates (which is exactly the mismatched-cost-model defect).
  uarch::trace_gen_config cost_model{};
  /// Relative envelope widening (absorbs multiplicative measurement noise
  /// and repeat-mean spread).
  double rel_margin = 0.10;
  /// Absolute widening (absorbs the additive background-noise floor of
  /// events whose raw counts are small).
  double abs_margin = 65536.0;
  /// Components below this mixture weight are ignored (numerical dust
  /// from EM, not evidence of tampering).
  double min_component_weight = 0.01;
  /// Half-width, in component standard deviations, of the mass interval
  /// compared against the envelope.
  double sigma_span = 3.0;
};

/// Derives the static envelope of `m` under `opts.cost_model`. Exposed
/// separately so tests and tools can inspect the intervals directly.
uarch::static_envelope model_envelope(nn::model& m,
                                      const envelope_options& opts = {});

/// Cross-checks every fitted (class, event) cell of `det` against the
/// static envelope of `m`; findings append to `out`. The detector's
/// event list selects which envelope interval each cell compares against.
void check_envelope(nn::model& m, const core::detector& det,
                    const envelope_options& opts, check_report& out);

}  // namespace advh::analysis
