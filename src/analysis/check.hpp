// Static-analysis framework shared by every advh_check pass.
//
// The model-graph verifier (analysis/verifier) predates this framework and
// keeps its own diagnostic vocabulary; everything else — the detector-file
// linter (core/detector_io), the HPC envelope pass (analysis/envelope_pass)
// and the policy-consistency pass (analysis/policy_pass) — reports through
// check_report with stable ADVH-Exxx / ADVH-Wxxx identifiers, so CI and
// the choke points (load_detector, detection_service construction,
// detector::fit) speak the same codes as the advh_check CLI.
//
// Code space, by hundreds digit:
//   0xx  framework / target resolution (E001 unreadable target,
//        E002 unresolvable/unparseable target)
//   1xx  model-graph passes (mapped 1:1 from analysis::diag_code)
//   2xx  detector/checkpoint files (ADET format, drift section)
//   3xx  HPC envelope (abstract-interpretation feasibility)
//   4xx  policy consistency (detector + serve configuration)
// The E/W prefix tracks the finding's severity, the number its defect
// class; a class that can occur at either severity keeps one number.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"

namespace advh::analysis {

/// One defect found by a static-analysis pass.
struct finding {
  severity sev = severity::error;
  std::string code;     ///< stable identifier, e.g. "ADVH-E231"
  std::string where;    ///< artifact coordinate, e.g. "(class 3, event instructions)"
  std::string message;
};

/// Formats the stable identifier for a defect class at a severity, e.g.
/// make_code(severity::error, 231) == "ADVH-E231".
std::string make_code(severity sev, int number);

/// Findings of all passes run against one target (a model, a detector
/// file, a config). One CLI invocation produces one report per target.
struct check_report {
  std::string target;
  std::vector<finding> findings;

  std::size_t error_count() const noexcept;
  std::size_t warning_count() const noexcept;
  bool has_errors() const noexcept { return error_count() > 0; }

  void add(severity sev, int code_number, std::string where,
           std::string message);

  /// True when any finding carries the given code number (any severity).
  bool has_code(int code_number) const;

  /// Comma-separated unique codes of error-severity findings, for embedding
  /// in exception messages so loaders report the same identifiers the CLI
  /// prints.
  std::string error_codes() const;

  /// advh_check exit-code contract: 0 clean, 1 warnings only, 2 errors.
  int exit_code() const noexcept;

  /// Human-readable multi-line rendering (one line per finding).
  std::string to_text() const;
  /// Machine-readable rendering (advh_check --json).
  std::string to_json() const;
};

/// Thrown by static-check choke points (detector load, service/config
/// construction) when a report carries errors. Derives from
/// invariant_error so callers treating misconfiguration as a precondition
/// violation keep working.
class check_error : public advh::invariant_error {
 public:
  explicit check_error(check_report report, const std::string& context = "");

  const check_report& report() const noexcept { return report_; }

 private:
  check_report report_;
};

/// Stable 1xx defect-class number of a model-graph diagnostic.
int code_number(diag_code code);

/// Re-expresses a model-graph verification report as coded findings (the
/// graph pass of advh_check).
void append_graph_findings(const verification_report& vr, check_report& out);

/// Escapes a string for embedding in a JSON string literal.
std::string json_escape(const std::string& s);

}  // namespace advh::analysis
