// Diagnostic vocabulary of the model-graph static verifier.
//
// Each diagnostic pins one defect class to one layer (by top-level index
// and dotted path) so a broken graph is actionable before a single
// inference runs. Errors mean the inference data flow — and therefore the
// HPC footprint the detector fingerprints — cannot be trusted; warnings
// flag smells that degrade the signal without corrupting it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace advh::analysis {

enum class severity { warning, error };

enum class diag_code {
  // Shape propagation.
  no_shape_inference,   ///< layer declares no static shape inference
  shape_mismatch,       ///< layer geometry rejects its incoming shape
  output_head_mismatch, ///< final output is not (1, num_classes) logits
  // Parameter audit.
  non_finite_param,     ///< NaN/Inf parameter values
  uninitialized_param,  ///< all-zero weight/gamma tensor
  duplicate_param,      ///< parameter registered more than once
  unregistered_params,  ///< parametric layer exposes no parameters
  param_invisible,      ///< leaf parameter missing from model::params()
  param_not_serialized, ///< parameter value absent from collect_state()
  // Trace coverage.
  missing_trace_contract,    ///< layer declares no trace contribution
  incomplete_trace_contract, ///< contract lacks active-input/output sets
  // Structural contracts.
  dead_layer,           ///< layer provably contributes no computation
  trailing_activation,  ///< activation/dropout after the logit head
  batchnorm_epsilon,    ///< epsilon outside its numeric contract
  batchnorm_momentum,   ///< running-stat momentum outside (0, 1)
  // Graph well-formedness (malformed for_each_child wiring).
  graph_cycle,          ///< a layer is its own (transitive) child
  layer_aliased,        ///< one layer object reachable via two parents
};

/// Stable kebab-case identifier, e.g. "shape-mismatch" (used in JSON).
const char* to_string(diag_code code);
const char* to_string(severity sev);

/// Sentinel for diagnostics not attached to a top-level layer.
inline constexpr std::size_t no_layer_index = static_cast<std::size_t>(-1);

struct diagnostic {
  severity sev = severity::error;
  diag_code code = diag_code::shape_mismatch;
  /// Index into the model's top-level layer list (no_layer_index when the
  /// defect is model-wide).
  std::size_t layer_index = no_layer_index;
  /// Dotted instance path of the offending layer, e.g. "block2.main.bn1".
  std::string layer_path;
  std::string message;
};

/// Outcome of one verification run over one model graph.
struct verification_report {
  std::string model_name;
  std::string input_shape;
  std::size_t num_classes = 0;
  std::size_t layers_checked = 0;
  std::vector<diagnostic> diags;

  std::size_t error_count() const noexcept;
  std::size_t warning_count() const noexcept;
  bool has_errors() const noexcept { return error_count() > 0; }

  void add(severity sev, diag_code code, std::size_t layer_index,
           std::string layer_path, std::string message);

  /// Human-readable multi-line rendering (one line per diagnostic).
  std::string to_text() const;
  /// Machine-readable rendering for tooling (advh_lint --json).
  std::string to_json() const;
};

/// Thrown by verification choke points (model load, pipeline setup) when a
/// graph fails verification; carries the full report.
class verification_error : public advh::error {
 public:
  /// `context` names the verification site (state-file path, scenario
  /// label) and is prepended to the message when non-empty.
  explicit verification_error(verification_report report,
                              const std::string& context = "");

  const verification_report& report() const noexcept { return report_; }

 private:
  verification_report report_;
};

}  // namespace advh::analysis
