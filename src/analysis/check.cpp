#include "analysis/check.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace advh::analysis {

std::string make_code(severity sev, int number) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "ADVH-%c%03d",
                sev == severity::error ? 'E' : 'W', number);
  return buf;
}

std::size_t check_report::error_count() const noexcept {
  std::size_t n = 0;
  for (const auto& f : findings) n += f.sev == severity::error ? 1 : 0;
  return n;
}

std::size_t check_report::warning_count() const noexcept {
  return findings.size() - error_count();
}

void check_report::add(severity sev, int code_number, std::string where,
                       std::string message) {
  findings.push_back(finding{sev, make_code(sev, code_number),
                             std::move(where), std::move(message)});
}

bool check_report::has_code(int code_number) const {
  const std::string e = make_code(severity::error, code_number);
  const std::string w = make_code(severity::warning, code_number);
  return std::any_of(findings.begin(), findings.end(), [&](const finding& f) {
    return f.code == e || f.code == w;
  });
}

std::string check_report::error_codes() const {
  std::string out;
  for (const auto& f : findings) {
    if (f.sev != severity::error) continue;
    if (out.find(f.code) != std::string::npos) continue;
    if (!out.empty()) out += ", ";
    out += f.code;
  }
  return out;
}

int check_report::exit_code() const noexcept {
  if (error_count() > 0) return 2;
  return findings.empty() ? 0 : 1;
}

std::string check_report::to_text() const {
  std::ostringstream os;
  os << "check " << target << ": " << error_count() << " error(s), "
     << warning_count() << " warning(s)\n";
  for (const auto& f : findings) {
    os << "  [" << to_string(f.sev) << "] " << f.code;
    if (!f.where.empty()) os << " " << f.where;
    os << ": " << f.message << "\n";
  }
  return os.str();
}

std::string check_report::to_json() const {
  std::ostringstream os;
  os << "{\"target\":\"" << json_escape(target) << "\",";
  os << "\"errors\":" << error_count() << ",";
  os << "\"warnings\":" << warning_count() << ",";
  os << "\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& f = findings[i];
    if (i > 0) os << ",";
    os << "{\"severity\":\"" << to_string(f.sev) << "\",";
    os << "\"code\":\"" << json_escape(f.code) << "\",";
    os << "\"where\":\"" << json_escape(f.where) << "\",";
    os << "\"message\":\"" << json_escape(f.message) << "\"}";
  }
  os << "]}";
  return os.str();
}

namespace {
std::string summarize_check(const check_report& r, const std::string& context) {
  std::string s = (context.empty() ? r.target : context + ": " + r.target) +
                  ": failed static checks [" + r.error_codes() + "]\n" +
                  r.to_text();
  if (!s.empty() && s.back() == '\n') s.pop_back();
  return s;
}
}  // namespace

check_error::check_error(check_report report, const std::string& context)
    : advh::invariant_error(summarize_check(report, context)),
      report_(std::move(report)) {}

int code_number(diag_code code) {
  switch (code) {
    case diag_code::no_shape_inference:
      return 101;
    case diag_code::shape_mismatch:
      return 102;
    case diag_code::output_head_mismatch:
      return 103;
    case diag_code::non_finite_param:
      return 110;
    case diag_code::uninitialized_param:
      return 111;
    case diag_code::duplicate_param:
      return 112;
    case diag_code::unregistered_params:
      return 113;
    case diag_code::param_invisible:
      return 114;
    case diag_code::param_not_serialized:
      return 115;
    case diag_code::missing_trace_contract:
      return 120;
    case diag_code::incomplete_trace_contract:
      return 121;
    case diag_code::dead_layer:
      return 130;
    case diag_code::trailing_activation:
      return 131;
    case diag_code::batchnorm_epsilon:
      return 132;
    case diag_code::batchnorm_momentum:
      return 133;
    case diag_code::graph_cycle:
      return 140;
    case diag_code::layer_aliased:
      return 141;
  }
  return 100;
}

void append_graph_findings(const verification_report& vr, check_report& out) {
  for (const diagnostic& d : vr.diags) {
    std::string where;
    if (d.layer_index != no_layer_index) {
      where = "layer " + std::to_string(d.layer_index);
    }
    if (!d.layer_path.empty()) {
      where += where.empty() ? "(" + d.layer_path + ")"
                             : " (" + d.layer_path + ")";
    }
    out.add(d.sev, code_number(d.code), std::move(where),
            std::string(to_string(d.code)) + ": " + d.message);
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace advh::analysis
