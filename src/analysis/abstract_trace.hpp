// Static construction of an inference trace from the model graph.
//
// trace_inference records the entry sequence a concrete forward pass
// emits; this builder derives the same sequence — kinds, element counts,
// parameter footprints, conv geometry — purely from the graph, by folding
// the input shape through infer_output_shape and mirroring each layer's
// emission rules (including the residual/dense composite ordering). The
// active-input/output sets stay empty: they are the data-dependent part
// the envelope pass abstracts to [0, in_numel].
//
// Fidelity contract: for any model that verifies cleanly, the abstract
// trace matches a real trace_inference entry-for-entry on every field
// except the active sets (asserted by tests/test_check.cpp). This is what
// makes the envelope derived from it a sound bound on what the uarch
// simulator can produce for *any* input.
#pragma once

#include "nn/model.hpp"

namespace advh::analysis {

/// Builds the statically-derived trace of one inference of `m` at its
/// configured input shape. Throws advh::shape_error / unsupported_error
/// when the graph cannot be folded (the graph pass reports those defects
/// with codes; callers should verify first).
nn::inference_trace abstract_inference_trace(nn::model& m);

}  // namespace advh::analysis
