// Model-graph static verifier.
//
// Verifies a constructed advh::nn::model *without executing it*. Four
// passes:
//   1. shape      — symbolic shape propagation through the whole layer
//                   graph (conv/pool arithmetic, flatten/linear width,
//                   batch-norm channel agreement, logit-head width);
//   2. params     — parameter audit: NaN/Inf values, all-zero weights,
//                   duplicate registration, parameters invisible to
//                   model::params() or missing from serialized state;
//   3. trace      — trace-coverage analysis: every layer must declare its
//                   trace-event contribution so trace_inference provably
//                   observes the full data flow the HPC simulator
//                   fingerprints;
//   4. structure  — dead/degenerate layers, activation after the logit
//                   head, batch-norm epsilon/momentum range contracts.
//
// Choke points (nn::load_state, core::prepare_scenario) call
// ensure_verified and refuse to proceed on errors; the advh_lint tool
// exposes the same report on the command line.
#pragma once

#include "analysis/diagnostics.hpp"
#include "nn/model.hpp"

namespace advh::analysis {

struct verify_options {
  bool check_shapes = true;
  bool check_params = true;
  bool check_trace = true;
  bool check_structure = true;
};

/// Runs all enabled passes and returns the combined report. Never throws
/// on graph defects — they land in the report.
verification_report verify_model(nn::model& m,
                                 const verify_options& opts = {});

/// Verifies and throws verification_error when the report carries errors.
/// `context` names the caller in the log line (e.g. the state-file path).
void ensure_verified(nn::model& m, const std::string& context,
                     const verify_options& opts = {});

}  // namespace advh::analysis
