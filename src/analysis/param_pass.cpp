// Pass 2: parameter audit.
//
// Collects parameters leaf-by-leaf (every learnable tensor lives on a
// leaf) and cross-checks them against the model-level aggregation
// (model::params()) and the serialization surface (collect_state). A
// parameter that a composite block forgets to forward is invisible to the
// optimizer and silently never trained — exactly the kind of defect that
// corrupts the benign HPC templates without ever crashing.
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "analysis/passes.hpp"

namespace advh::analysis::detail {

namespace {

std::size_t non_finite_count(const tensor& t) {
  std::size_t n = 0;
  for (float v : t.data()) n += std::isfinite(v) ? 0 : 1;
  return n;
}

bool all_zero(const tensor& t) {
  for (float v : t.data()) {
    if (v != 0.0f) return false;
  }
  return true;
}

/// Weight-like parameters are He/ones-initialised, so an all-zero value
/// means construction was bypassed; biases/betas legitimately start at 0.
bool weight_like(const nn::parameter& p) {
  return p.name.ends_with(".weight") || p.name.ends_with(".gamma");
}

}  // namespace

void run_param_pass(nn::model& m, const std::vector<walk_entry>& graph,
                    verification_report& report) {
  // Model-level aggregation: duplicates here mean a layer (or a composite
  // forwarding twice) registered the same parameter more than once.
  std::unordered_map<const nn::parameter*, std::size_t> registered;
  for (const nn::parameter* p : m.params()) ++registered[p];
  for (const auto& [p, count] : registered) {
    if (count > 1) {
      report.add(severity::error, diag_code::duplicate_param, no_layer_index,
                 p->name,
                 "parameter registered " + std::to_string(count) +
                     " times in model::params(); its gradient would be "
                     "applied that many times per step");
    }
  }

  std::vector<tensor*> state;
  m.net().collect_state(state);
  const std::unordered_set<const tensor*> state_set(state.begin(),
                                                    state.end());

  for (const walk_entry& e : graph) {
    if (!e.leaf) continue;
    std::vector<nn::parameter*> local;
    // collect_params is logically const but predates const-correct
    // traversal; the audit only reads.
    const_cast<nn::layer*>(e.node)->collect_params(local);

    if (local.empty() && e.node->trace_info().records_active_inputs) {
      report.add(severity::error, diag_code::unregistered_params, e.top_index,
                 e.node->name(),
                 "parametric layer (" + to_string(e.node->kind()) +
                     ") exposes no parameters; it can never be trained or "
                     "serialized");
      continue;
    }

    for (const nn::parameter* p : local) {
      const std::size_t bad = non_finite_count(p->value);
      if (bad > 0) {
        report.add(severity::error, diag_code::non_finite_param, e.top_index,
                   e.node->name(),
                   p->name + ": " + std::to_string(bad) + "/" +
                       std::to_string(p->value.numel()) +
                       " values are NaN/Inf");
      } else if (weight_like(*p) && p->value.numel() > 0 &&
                 all_zero(p->value)) {
        report.add(severity::error, diag_code::uninitialized_param,
                   e.top_index, e.node->name(),
                   p->name + ": weight tensor is entirely zero "
                   "(initialisation bypassed?)");
      }
      if (registered.find(p) == registered.end()) {
        report.add(severity::error, diag_code::param_invisible, e.top_index,
                   e.node->name(),
                   p->name + " is not reported by model::params(); a "
                   "composite block fails to forward collect_params");
      }
      if (state_set.find(&p->value) == state_set.end()) {
        report.add(severity::error, diag_code::param_not_serialized,
                   e.top_index, e.node->name(),
                   p->name + " is missing from collect_state(); model "
                   "save/load would silently drop it");
      }
    }
  }
}

}  // namespace advh::analysis::detail
