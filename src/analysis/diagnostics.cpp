#include "analysis/diagnostics.hpp"

#include <sstream>

#include "analysis/check.hpp"

namespace advh::analysis {

const char* to_string(diag_code code) {
  switch (code) {
    case diag_code::no_shape_inference:
      return "no-shape-inference";
    case diag_code::shape_mismatch:
      return "shape-mismatch";
    case diag_code::output_head_mismatch:
      return "output-head-mismatch";
    case diag_code::non_finite_param:
      return "non-finite-param";
    case diag_code::uninitialized_param:
      return "uninitialized-param";
    case diag_code::duplicate_param:
      return "duplicate-param";
    case diag_code::unregistered_params:
      return "unregistered-params";
    case diag_code::param_invisible:
      return "param-invisible";
    case diag_code::param_not_serialized:
      return "param-not-serialized";
    case diag_code::missing_trace_contract:
      return "missing-trace-contract";
    case diag_code::incomplete_trace_contract:
      return "incomplete-trace-contract";
    case diag_code::dead_layer:
      return "dead-layer";
    case diag_code::trailing_activation:
      return "trailing-activation";
    case diag_code::batchnorm_epsilon:
      return "batchnorm-epsilon";
    case diag_code::batchnorm_momentum:
      return "batchnorm-momentum";
    case diag_code::graph_cycle:
      return "graph-cycle";
    case diag_code::layer_aliased:
      return "layer-aliased";
  }
  return "unknown";
}

const char* to_string(severity sev) {
  return sev == severity::error ? "error" : "warning";
}

std::size_t verification_report::error_count() const noexcept {
  std::size_t n = 0;
  for (const auto& d : diags) n += d.sev == severity::error ? 1 : 0;
  return n;
}

std::size_t verification_report::warning_count() const noexcept {
  return diags.size() - error_count();
}

void verification_report::add(severity sev, diag_code code,
                              std::size_t layer_index, std::string layer_path,
                              std::string message) {
  diags.push_back(diagnostic{sev, code, layer_index, std::move(layer_path),
                             std::move(message)});
}

std::string verification_report::to_text() const {
  std::ostringstream os;
  os << "verify " << model_name << " (input " << input_shape << ", "
     << num_classes << " classes): " << layers_checked << " layers, "
     << error_count() << " error(s), " << warning_count() << " warning(s)\n";
  for (const auto& d : diags) {
    os << "  [" << to_string(d.sev) << "] " << to_string(d.code);
    if (d.layer_index != no_layer_index) os << " @layer " << d.layer_index;
    if (!d.layer_path.empty()) os << " (" << d.layer_path << ")";
    os << ": " << d.message << "\n";
  }
  return os.str();
}

std::string verification_report::to_json() const {
  std::ostringstream os;
  os << "{\"model\":\"" << json_escape(model_name) << "\",";
  os << "\"input\":\"" << json_escape(input_shape) << "\",";
  os << "\"classes\":" << num_classes << ",";
  os << "\"layers_checked\":" << layers_checked << ",";
  os << "\"errors\":" << error_count() << ",";
  os << "\"warnings\":" << warning_count() << ",";
  os << "\"diagnostics\":[";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const auto& d = diags[i];
    if (i > 0) os << ",";
    os << "{\"severity\":\"" << to_string(d.sev) << "\",";
    os << "\"code\":\"" << to_string(d.code) << "\",";
    if (d.layer_index != no_layer_index) {
      os << "\"layer_index\":" << d.layer_index << ",";
    } else {
      os << "\"layer_index\":null,";
    }
    os << "\"layer\":\"" << json_escape(d.layer_path) << "\",";
    os << "\"message\":\"" << json_escape(d.message) << "\"}";
  }
  os << "]}";
  return os.str();
}

namespace {
std::string summarize(const verification_report& r,
                      const std::string& context) {
  std::string s = (context.empty() ? r.model_name : context + ": " +
                   r.model_name) +
                  ": model graph failed static verification (" +
                  std::to_string(r.error_count()) + " error(s))\n" +
                  r.to_text();
  if (!s.empty() && s.back() == '\n') s.pop_back();
  return s;
}
}  // namespace

verification_error::verification_error(verification_report report,
                                       const std::string& context)
    : advh::error(summarize(report, context)), report_(std::move(report)) {}

}  // namespace advh::analysis
