#include "analysis/abstract_trace.hpp"

#include <vector>

#include "common/error.hpp"

namespace advh::analysis {

namespace {

/// Total parameter bytes a layer's forward reads. collect_params is
/// logically const (it appends pointers without mutating the layer), but
/// hands out mutable parameter pointers, hence the cast; only sizes are
/// read here.
std::size_t param_bytes(const nn::layer& l) {
  std::vector<nn::parameter*> params;
  const_cast<nn::layer&>(l).collect_params(params);
  std::size_t numel = 0;
  for (const nn::parameter* p : params) numel += p->value.numel();
  return numel * sizeof(float);
}

shape build(const nn::layer& l, const shape& in, nn::inference_trace& tr);

/// Leaf emission, mirroring each layer kind's forward-time trace entry.
shape emit_leaf(const nn::layer& l, const shape& in,
                nn::inference_trace& tr) {
  const shape out = l.infer_output_shape(in);
  nn::layer_trace_entry e;
  e.kind = l.kind();
  e.name = l.name();
  e.in_numel = in.numel();
  e.out_numel = out.numel();
  switch (l.kind()) {
    case nn::layer_kind::conv2d:
    case nn::layer_kind::depthwise_conv2d:
      e.weight_bytes = param_bytes(l);
      e.in_channels = in[1];
      e.in_spatial = in[2] * in[3];
      e.out_channels = out[1];
      e.out_spatial = out[2] * out[3];
      break;
    case nn::layer_kind::linear:
      e.weight_bytes = param_bytes(l);
      e.in_channels = in[1];
      e.in_spatial = 1;
      e.out_channels = out[1];
      e.out_spatial = 1;
      break;
    case nn::layer_kind::batchnorm2d:
      // gamma/beta plus the running mean/variance buffers.
      e.weight_bytes = 4 * in[1] * sizeof(float);
      break;
    default:
      break;  // relu/pool/flatten/dropout entries carry counts only
  }
  tr.layers.push_back(std::move(e));
  return out;
}

shape build_residual(const nn::layer& l,
                     const std::vector<const nn::layer*>& kids,
                     const shape& in, nn::inference_trace& tr) {
  // for_each_child order: main path, optional projection, output relu.
  ADVH_CHECK_MSG(kids.size() == 2 || kids.size() == 3,
                 l.name() + ": residual block expects 2 or 3 children");
  const shape main_out = build(*kids.front(), in, tr);
  if (kids.size() == 3) build(*kids[1], in, tr);

  nn::layer_trace_entry e;
  e.kind = nn::layer_kind::residual_add;
  e.name = l.name() + ".add";
  e.in_numel = main_out.numel() * 2;
  e.out_numel = main_out.numel();
  tr.layers.push_back(std::move(e));

  return build(*kids.back(), main_out, tr);
}

shape build_dense(const std::vector<const nn::layer*>& kids, const shape& in,
                  nn::inference_trace& tr) {
  shape cur = in;
  for (const nn::layer* unit : kids) {
    const shape unit_out = build(*unit, cur, tr);
    const shape cat{1, cur[1] + unit_out[1], unit_out[2], unit_out[3]};

    nn::layer_trace_entry e;
    e.kind = nn::layer_kind::concat;
    e.name = unit->name() + ".cat";
    e.in_numel = cat.numel();
    e.out_numel = cat.numel();
    tr.layers.push_back(std::move(e));
    cur = cat;
  }
  return cur;
}

shape build(const nn::layer& l, const shape& in, nn::inference_trace& tr) {
  std::vector<const nn::layer*> kids;
  l.for_each_child([&](const nn::layer& c) { kids.push_back(&c); });
  if (kids.empty()) return emit_leaf(l, in, tr);

  switch (l.kind()) {
    case nn::layer_kind::residual_add:
      return build_residual(l, kids, in, tr);
    case nn::layer_kind::concat:
      return build_dense(kids, in, tr);
    default: {
      // Plain container (sequential): fold children in execution order.
      shape cur = in;
      for (const nn::layer* k : kids) cur = build(*k, cur, tr);
      return cur;
    }
  }
}

}  // namespace

nn::inference_trace abstract_inference_trace(nn::model& m) {
  const shape& chw = m.input_shape();
  ADVH_CHECK_MSG(chw.rank() == 3,
                 m.name() + ": abstract trace expects a CHW input shape");
  shape cur{1, chw[0], chw[1], chw[2]};
  nn::inference_trace tr;
  const nn::sequential& root = m.net();
  for (std::size_t i = 0; i < root.size(); ++i) {
    cur = build(root.at(i), cur, tr);
  }
  return tr;
}

}  // namespace advh::analysis
