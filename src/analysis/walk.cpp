#include "analysis/walk.hpp"

#include <unordered_set>

namespace advh::analysis {

namespace {

struct walk_state {
  walk_result out;
  /// Every node ever visited (alias detection across subtrees).
  std::unordered_set<const nn::layer*> seen;
  /// Nodes on the current descent path (cycle detection).
  std::unordered_set<const nn::layer*> path;
};

void visit(const nn::layer& l, std::size_t top_index, std::size_t depth,
           walk_state& st) {
  if (st.path.count(&l) != 0) {
    st.out.anomalies.push_back(
        walk_anomaly{walk_anomaly::kind::cycle, top_index, l.name()});
    return;
  }
  if (!st.seen.insert(&l).second) {
    st.out.anomalies.push_back(
        walk_anomaly{walk_anomaly::kind::aliased, top_index, l.name()});
    return;
  }
  walk_entry e;
  e.node = &l;
  e.top_index = top_index;
  e.depth = depth;
  std::size_t children = 0;
  l.for_each_child([&](const nn::layer&) { ++children; });
  e.leaf = children == 0;
  st.out.entries.push_back(e);

  st.path.insert(&l);
  l.for_each_child(
      [&](const nn::layer& c) { visit(c, top_index, depth + 1, st); });
  st.path.erase(&l);
}

}  // namespace

walk_result walk_graph_checked(const nn::sequential& root) {
  walk_state st;
  for (std::size_t i = 0; i < root.size(); ++i) {
    visit(root.at(i), i, 0, st);
  }
  return st.out;
}

std::vector<walk_entry> walk_graph(const nn::sequential& root) {
  return walk_graph_checked(root).entries;
}

}  // namespace advh::analysis
