#include "analysis/walk.hpp"

namespace advh::analysis {

namespace {

void visit(const nn::layer& l, std::size_t top_index, std::size_t depth,
           std::vector<walk_entry>& out) {
  walk_entry e;
  e.node = &l;
  e.top_index = top_index;
  e.depth = depth;
  std::size_t children = 0;
  l.for_each_child([&](const nn::layer&) { ++children; });
  e.leaf = children == 0;
  out.push_back(e);
  l.for_each_child(
      [&](const nn::layer& c) { visit(c, top_index, depth + 1, out); });
}

}  // namespace

std::vector<walk_entry> walk_graph(const nn::sequential& root) {
  std::vector<walk_entry> out;
  for (std::size_t i = 0; i < root.size(); ++i) {
    visit(root.at(i), i, 0, out);
  }
  return out;
}

}  // namespace advh::analysis
