// Flattening walk over a layer graph.
//
// Containers (sequential) and composite blocks (residual/dense) expose
// their direct sub-layers via layer::for_each_child; the walk linearises
// the whole tree in execution order while remembering, for every node,
// the index of the top-level layer that owns it — the coordinate the
// verifier's diagnostics report.
//
// A malformed for_each_child wiring (a layer reachable from itself, or
// one layer object registered under two parents) would make the naive
// recursion unbounded or double-count a layer's computation. The walk
// therefore tracks visited nodes: an already-visited child is never
// descended into again, and the defect is reported as a walk_anomaly
// (verifier codes graph-cycle / layer-aliased).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/sequential.hpp"

namespace advh::analysis {

struct walk_entry {
  const nn::layer* node = nullptr;
  /// Index of the owning top-level layer within the root graph.
  std::size_t top_index = 0;
  /// Nesting depth: 0 for top-level layers themselves.
  std::size_t depth = 0;
  /// True when the node owns no sub-layers (a computational leaf).
  bool leaf = true;
};

/// Structural defect found while walking (the walk stays bounded by
/// refusing to re-enter the offending node).
struct walk_anomaly {
  enum class kind {
    cycle,    ///< child is one of its own ancestors
    aliased,  ///< child already reached through another parent
  };
  kind k = kind::cycle;
  /// Top-level index under which the repeated node was re-encountered.
  std::size_t top_index = 0;
  /// Instance name of the repeated node.
  std::string node_name;
};

struct walk_result {
  std::vector<walk_entry> entries;
  std::vector<walk_anomaly> anomalies;
};

/// Linearises `root`'s layer tree in execution order, recording structural
/// anomalies instead of recursing into them. The root container itself is
/// not included.
walk_result walk_graph_checked(const nn::sequential& root);

/// Entries-only convenience wrapper (same bounded traversal).
std::vector<walk_entry> walk_graph(const nn::sequential& root);

}  // namespace advh::analysis
