// Flattening walk over a layer graph.
//
// Containers (sequential) and composite blocks (residual/dense) expose
// their direct sub-layers via layer::for_each_child; the walk linearises
// the whole tree in execution order while remembering, for every node,
// the index of the top-level layer that owns it — the coordinate the
// verifier's diagnostics report.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/sequential.hpp"

namespace advh::analysis {

struct walk_entry {
  const nn::layer* node = nullptr;
  /// Index of the owning top-level layer within the root graph.
  std::size_t top_index = 0;
  /// Nesting depth: 0 for top-level layers themselves.
  std::size_t depth = 0;
  /// True when the node owns no sub-layers (a computational leaf).
  bool leaf = true;
};

/// Linearises `root`'s layer tree in execution order. The root container
/// itself is not included.
std::vector<walk_entry> walk_graph(const nn::sequential& root);

}  // namespace advh::analysis
