// Policy-consistency pass (advh_check codes 4xx).
//
// The serve layer's degradation ladder and the detector's fail-closed
// policies compose: every degraded path (repeat shedding, event shedding,
// quarantine masking) must either still clear min_events_for_verdict or
// provably land in fail-closed abstain. This pass verifies that statically
// — at config-construction time, advh_check time and service start — so a
// contradictory config (fail-open abstain under an event-shedding rung,
// a default deadline no rung can serve, a zero-capacity queue) is
// rejected before the first overloaded request, not during it.
#pragma once

#include "analysis/check.hpp"
#include "core/detector.hpp"
#include "serve/service.hpp"

namespace advh::analysis {

/// Checks a detector configuration's internal consistency (events,
/// repeats, sigma rule, abstain floor, fail-open policy smells).
void check_detector_policy(const core::detector_config& cfg,
                           check_report& out);

/// Checks a serve configuration against the detector config it will serve:
/// ladder shape, admission arithmetic, degraded-path evidence floors.
/// The effective ladder is resolved exactly as detection_service would.
void check_serve_policy(const serve::serve_config& cfg,
                        const core::detector_config& det_cfg,
                        check_report& out);

}  // namespace advh::analysis
