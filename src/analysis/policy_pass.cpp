#include "analysis/policy_pass.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "hpc/events.hpp"

namespace advh::analysis {

namespace {

std::string rung_name(std::size_t r) { return "ladder rung " + std::to_string(r); }

}  // namespace

void check_detector_policy(const core::detector_config& cfg,
                           check_report& out) {
  if (cfg.events.empty()) {
    out.add(severity::error, 420, "events",
            "detector monitors zero events: no verdict can carry evidence");
  }
  for (std::size_t i = 0; i < cfg.events.size(); ++i) {
    for (std::size_t j = i + 1; j < cfg.events.size(); ++j) {
      if (cfg.events[i] == cfg.events[j]) {
        out.add(severity::error, 421,
                "event " + hpc::to_string(cfg.events[i]),
                "event configured twice: its evidence would be "
                "double-counted by the any-event fusion");
      }
    }
  }
  if (cfg.repeats == 0) {
    out.add(severity::error, 422, "repeats",
            "measurement repeat count is zero");
  }
  if (!std::isfinite(cfg.sigma_multiplier) || cfg.sigma_multiplier <= 0.0) {
    out.add(severity::error, 423, "sigma_multiplier",
            "threshold sigma multiplier must be positive and finite");
  }
  if (cfg.k_max == 0) {
    out.add(severity::error, 426, "k_max",
            "BIC scan upper bound is zero: no mixture can be fitted");
  }
  if (cfg.min_events_for_verdict == 0) {
    out.add(severity::error, 424, "min_events_for_verdict",
            "a verdict may be issued over zero surviving events: degraded "
            "measurements would score benign without evidence (fail-open)");
  } else if (cfg.min_events_for_verdict > cfg.events.size()) {
    out.add(severity::error, 425, "min_events_for_verdict",
            "evidence floor " + std::to_string(cfg.min_events_for_verdict) +
                " exceeds the " + std::to_string(cfg.events.size()) +
                " configured events: every verdict abstains");
  }
  if (!cfg.flag_unmodeled) {
    out.add(severity::warning, 427, "flag_unmodeled",
            "unmodelled predictions pass as benign (fail-open): the threat "
            "model treats unobserved behaviour as suspect");
  }
  if (!cfg.flag_on_abstain) {
    out.add(severity::warning, 428, "flag_on_abstain",
            "abstaining verdicts pass as benign (fail-open): degraded "
            "measurements weaken detection silently");
  }
}

void check_serve_policy(const serve::serve_config& cfg,
                        const core::detector_config& det_cfg,
                        check_report& out) {
  if (cfg.queue_capacity == 0) {
    out.add(severity::error, 440, "queue_capacity",
            "zero-capacity queue rejects every non-canary request");
  }
  if (cfg.batch_size == 0) {
    out.add(severity::error, 441, "batch_size",
            "service rounds of zero requests never drain the queue");
  }
  if (!std::isfinite(cfg.admission_margin) || cfg.admission_margin < 1.0) {
    out.add(severity::error, 442, "admission_margin",
            "admission margin below 1 admits requests whose own estimate "
            "already misses their deadline");
  }
  if (!std::isfinite(cfg.batch_admit_occupancy) ||
      cfg.batch_admit_occupancy <= 0.0 || cfg.batch_admit_occupancy > 1.0) {
    out.add(severity::error, 443, "batch_admit_occupancy",
            "batch backpressure threshold must lie in (0, 1]");
  }
  if (!std::isfinite(cfg.release_hysteresis) || cfg.release_hysteresis < 0.0 ||
      cfg.release_hysteresis >= 1.0) {
    out.add(severity::error, 444, "release_hysteresis",
            "rung release hysteresis must lie in [0, 1)");
  }
  if (!std::isfinite(cfg.latency_alpha) || cfg.latency_alpha <= 0.0 ||
      cfg.latency_alpha > 1.0) {
    out.add(severity::error, 445, "latency_alpha",
            "latency estimator decay must lie in (0, 1]");
  }

  const std::size_t n_events = det_cfg.events.size();
  const std::vector<serve::ladder_rung> ladder =
      serve::resolve_ladder(cfg, det_cfg.repeats);
  if (ladder.empty() || ladder.front().engage_occupancy != 0.0) {
    out.add(severity::error, 446, "ladder",
            "rung 0 must engage at occupancy 0 (the unloaded operating "
            "point)");
  }
  const std::size_t kept = std::clamp<std::size_t>(
      cfg.kept_events_when_shedding, 1, std::max<std::size_t>(n_events, 1));
  if (cfg.kept_events_when_shedding != kept) {
    out.add(severity::warning, 456, "kept_events_when_shedding",
            "value " + std::to_string(cfg.kept_events_when_shedding) +
                " is clamped to " + std::to_string(kept) +
                " at service construction");
  }
  for (std::size_t r = 0; r < ladder.size(); ++r) {
    const serve::ladder_rung& rung = ladder[r];
    if (r > 0 && rung.engage_occupancy <= ladder[r - 1].engage_occupancy) {
      out.add(severity::error, 447, rung_name(r),
              "engage occupancies must strictly increase with depth");
    }
    if (rung.repeats == 0) {
      out.add(severity::error, 448, rung_name(r),
              "zero measurement repeats produce no evidence at all");
    }
    if (r > 0 && rung.repeats > ladder[r - 1].repeats) {
      out.add(severity::warning, 450, rung_name(r),
              "repeats increase with queue depth: the ladder makes "
              "overloaded requests more expensive, not cheaper");
    }
    if (rung.engage_occupancy > 1.0) {
      out.add(severity::warning, 449, rung_name(r),
              "engage occupancy above 1 is unreachable: the rung is dead "
              "configuration");
    }
    // Degraded-path evidence floor: an event-shedding rung measures only
    // the first `kept` events; the rest score as unavailable. If the
    // survivors cannot clear min_events_for_verdict, every verdict at
    // this rung abstains — which is safe only under fail-closed abstain.
    if (rung.shed_events && kept < det_cfg.min_events_for_verdict) {
      if (det_cfg.flag_on_abstain) {
        out.add(severity::warning, 452, rung_name(r),
                "sheds below the abstain floor: every verdict at this rung "
                "is the (fail-closed) abstain policy, not evidence");
      } else {
        out.add(severity::error, 451, rung_name(r),
                "sheds to " + std::to_string(kept) + " events, below "
                "min_events_for_verdict " +
                    std::to_string(det_cfg.min_events_for_verdict) +
                    ", with fail-open abstain: degraded verdicts pass as "
                    "benign without evidence");
      }
    }
  }

  // Deadline feasibility at the *cheapest* rung, using the static cost
  // seeds the estimator starts from: if even that floor exceeds the
  // default deadline, every defaulted request is rejected or shed — the
  // deadline budget contradicts the ladder.
  if (!ladder.empty() && cfg.default_deadline.count() > 0) {
    const serve::ladder_rung& deepest = ladder.back();
    const std::size_t events_at_floor = deepest.shed_events ? kept : n_events;
    const auto floor_cost =
        cfg.initial_fixed_cost +
        cfg.initial_unit_cost * static_cast<long>(deepest.repeats *
                                                  std::max<std::size_t>(
                                                      events_at_floor, 1));
    if (floor_cost > cfg.default_deadline) {
      out.add(severity::error, 453, "default_deadline",
              "below the estimated service floor of the deepest ladder "
              "rung: every defaulted request is infeasible at admission");
    }
  }

  if (cfg.batch_admit_occupancy < 1.0 && ladder.size() > 1 &&
      cfg.batch_admit_occupancy >= ladder[1].engage_occupancy) {
    out.add(severity::warning, 455, "batch_admit_occupancy",
            "at or above the first degraded rung's engage occupancy: "
            "queued batch alone can drag fidelity down for interactive "
            "traffic");
  }
}

}  // namespace advh::analysis
