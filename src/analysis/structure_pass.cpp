// Pass 4: structural contracts.
//
// Catches graphs that execute fine but are statically wrong for the
// detection pipeline: dead layers (no computation, no trace), an
// activation clamping the logit head, and batch-norm hyper-parameters
// outside the range where the normalised statistics — and therefore the
// activation sparsity the detector fingerprints — stay meaningful.
#include <cmath>

#include "analysis/passes.hpp"
#include "nn/batchnorm.hpp"

namespace advh::analysis::detail {

namespace {

/// Scans a container's direct children for back-to-back ReLUs: the second
/// re-rectifies an already non-negative tensor, contributing nothing but a
/// duplicated trace entry.
void scan_container(const nn::sequential& container, std::size_t top_index,
                    bool container_is_root, verification_report& report) {
  for (std::size_t i = 0; i + 1 < container.size(); ++i) {
    if (container.at(i).kind() == nn::layer_kind::relu &&
        container.at(i + 1).kind() == nn::layer_kind::relu) {
      report.add(severity::warning, diag_code::dead_layer,
                 container_is_root ? i + 1 : top_index,
                 container.at(i + 1).name(),
                 "ReLU directly after ReLU is a no-op that only duplicates "
                 "trace entries");
    }
  }
}

}  // namespace

void run_structure_pass(nn::model& m, const std::vector<walk_entry>& graph,
                        verification_report& report) {
  const nn::sequential& root = m.net();

  if (root.size() == 0) {
    report.add(severity::error, diag_code::dead_layer, no_layer_index,
               m.name(), "model graph is empty");
  }
  scan_container(root, 0, /*container_is_root=*/true, report);

  for (const walk_entry& e : graph) {
    // Empty containers: emit no trace, compute nothing, but still occupy a
    // slot in the graph — a refactoring leftover.
    if (const auto* seq = dynamic_cast<const nn::sequential*>(e.node)) {
      if (seq->size() == 0) {
        report.add(severity::error, diag_code::dead_layer, e.top_index,
                   seq->name(),
                   "sequential container holds no layers; it contributes "
                   "no computation and emits no trace");
      } else if (e.depth > 0) {
        scan_container(*seq, e.top_index, /*container_is_root=*/false,
                       report);
      }
    }

    if (const auto* bn = dynamic_cast<const nn::batchnorm2d*>(e.node)) {
      const float eps = bn->epsilon();
      const float mom = bn->momentum();
      if (!(std::isfinite(eps) && eps > 0.0f)) {
        report.add(severity::error, diag_code::batchnorm_epsilon, e.top_index,
                   bn->name(),
                   "epsilon " + std::to_string(eps) +
                       " must be a positive finite value; normalisation "
                       "would divide by ~0 on a collapsed channel");
      } else if (eps > 1e-2f) {
        report.add(severity::warning, diag_code::batchnorm_epsilon,
                   e.top_index, bn->name(),
                   "epsilon " + std::to_string(eps) +
                       " is large enough to visibly bias normalised "
                       "activations (contract: 0 < eps <= 1e-2)");
      }
      if (!(std::isfinite(mom) && mom > 0.0f && mom < 1.0f)) {
        report.add(severity::error, diag_code::batchnorm_momentum,
                   e.top_index, bn->name(),
                   "running-stat momentum " + std::to_string(mom) +
                       " must lie in (0, 1); running statistics would "
                       "never converge or never update");
      }
    }
  }

  // Degenerate flatten: propagate top-level shapes (best effort — the
  // shape pass already reported hard failures).
  {
    const shape& chw = m.input_shape();
    shape cur{1, chw[0], chw[1], chw[2]};
    for (std::size_t i = 0; i < root.size(); ++i) {
      if (root.at(i).kind() == nn::layer_kind::flatten && cur.rank() == 2) {
        report.add(severity::warning, diag_code::dead_layer, i,
                   root.at(i).name(),
                   "flatten of an already-flat (rank-2) tensor is an "
                   "identity");
      }
      try {
        cur = root.at(i).infer_output_shape(cur);
      } catch (const advh::error&) {
        break;
      }
    }
  }

  if (root.size() > 0) {
    const nn::layer& last = root.at(root.size() - 1);
    if (last.kind() == nn::layer_kind::relu) {
      report.add(severity::error, diag_code::trailing_activation,
                 root.size() - 1, last.name(),
                 "activation after the logit head clamps logit signs; "
                 "predictions and trace statistics become degenerate");
    } else if (last.kind() == nn::layer_kind::dropout) {
      report.add(severity::warning, diag_code::trailing_activation,
                 root.size() - 1, last.name(),
                 "dropout after the logit head rescales logits in "
                 "training mode for no benefit");
    }
  }
}

}  // namespace advh::analysis::detail
