#include "analysis/envelope_pass.hpp"

#include <cmath>
#include <string>

#include "analysis/abstract_trace.hpp"
#include "hpc/events.hpp"

namespace advh::analysis {

namespace {

const uarch::count_interval& interval_for(const uarch::static_envelope& env,
                                          hpc::hpc_event e) {
  switch (e) {
    case hpc::hpc_event::instructions:
      return env.instructions;
    case hpc::hpc_event::branches:
      return env.branches;
    case hpc::hpc_event::branch_misses:
      return env.branch_misses;
    case hpc::hpc_event::cache_references:
      return env.cache_references;
    case hpc::hpc_event::cache_misses:
      return env.cache_misses;
    case hpc::hpc_event::l1d_load_misses:
      return env.l1d_load_misses;
    case hpc::hpc_event::l1i_load_misses:
      return env.l1i_load_misses;
    case hpc::hpc_event::llc_load_misses:
      return env.llc_load_misses;
    case hpc::hpc_event::llc_store_misses:
      return env.llc_store_misses;
  }
  return env.instructions;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

uarch::static_envelope model_envelope(nn::model& m,
                                      const envelope_options& opts) {
  return uarch::analyze_abstract_trace(abstract_inference_trace(m),
                                       opts.cost_model);
}

void check_envelope(nn::model& m, const core::detector& det,
                    const envelope_options& opts, check_report& out) {
  const uarch::static_envelope env = model_envelope(m, opts);
  const auto& events = det.config().events;

  for (std::size_t cls = 0; cls < det.num_classes(); ++cls) {
    for (std::size_t e = 0; e < events.size(); ++e) {
      const auto& em = det.model_for(cls, e);
      if (!em.has_value()) continue;
      const uarch::count_interval& iv = interval_for(env, events[e]);
      const std::string where =
          "(class " + std::to_string(cls) + ", event " +
          hpc::to_string(events[e]) + ")";

      const auto comps = em->model.components();
      for (std::size_t k = 0; k < comps.size(); ++k) {
        const auto& c = comps[k];
        if (c.weight < opts.min_component_weight) continue;
        const double sd = std::sqrt(c.variance);
        // The component's mass interval: if even its nearest edge cannot
        // reach the widened envelope, the mass is infeasible.
        const double mass_lo = c.mean - opts.sigma_span * sd;
        const double mass_hi = c.mean + opts.sigma_span * sd;
        const bool feasible =
            iv.contains(mass_lo, opts.rel_margin, opts.abs_margin) ||
            iv.contains(mass_hi, opts.rel_margin, opts.abs_margin) ||
            (mass_lo < iv.lo && mass_hi > iv.hi);
        if (feasible) continue;
        out.add(severity::error, 301, where,
                "component " + std::to_string(k) + " (weight " +
                    fmt(c.weight) + ") concentrates its mass in [" +
                    fmt(mass_lo) + ", " + fmt(mass_hi) +
                    "], outside the statically feasible envelope [" +
                    fmt(iv.lo) + ", " + fmt(iv.hi) +
                    "]: template is miscalibrated, drifted or tampered, "
                    "or was fitted under a different uarch cost model");
      }
    }
  }
}

}  // namespace advh::analysis
