// Pass 1: symbolic shape propagation.
//
// Folds a batch-of-one activation shape through the top-level layer list.
// Composite blocks propagate through their children internally, so a
// mismatch deep inside a residual/dense block still surfaces with the
// nested layer's own name in the message while the diagnostic anchors to
// the top-level index. Propagation stops at the first failure (everything
// downstream of an undefined shape is undefined), but the other passes
// still run.
#include "analysis/passes.hpp"

namespace advh::analysis::detail {

void run_shape_pass(nn::model& m, verification_report& report) {
  const shape& chw = m.input_shape();
  shape cur{1, chw[0], chw[1], chw[2]};
  const nn::sequential& root = m.net();
  for (std::size_t i = 0; i < root.size(); ++i) {
    const nn::layer& l = root.at(i);
    try {
      cur = l.infer_output_shape(cur);
    } catch (const unsupported_error& e) {
      report.add(severity::error, diag_code::no_shape_inference, i, l.name(),
                 e.what());
      return;
    } catch (const shape_error& e) {
      report.add(severity::error, diag_code::shape_mismatch, i, l.name(),
                 e.what());
      return;
    }
  }
  if (cur.rank() != 2 || cur[0] != 1 || cur[1] != m.num_classes()) {
    const std::size_t last = root.size() == 0 ? no_layer_index : root.size() - 1;
    report.add(severity::error, diag_code::output_head_mismatch, last,
               root.size() == 0 ? m.name() : root.at(last).name(),
               "final output is " + cur.to_string() + " but the detector "
               "expects (1, " + std::to_string(m.num_classes()) + ") logits");
  }
}

}  // namespace advh::analysis::detail
