// Pass 3: trace-coverage analysis.
//
// AdvHunter's detection signal is the inference data flow: the uarch
// simulator replays exactly what trace_inference records. A layer that
// computes but appends no trace entry leaves a hole in the address stream
// — the GMM templates are then fit on a footprint that does not match the
// real inference, which silently skews every FPR/TPR number downstream.
// Hence every layer must *declare* its trace contribution, and parametric
// / activation layers must declare the data-dependent sets the trace
// generator gathers on.
#include "analysis/passes.hpp"

namespace advh::analysis::detail {

void run_trace_pass(const std::vector<walk_entry>& graph,
                    verification_report& report) {
  for (const walk_entry& e : graph) {
    const nn::trace_contract c = e.node->trace_info();
    // Pure containers aggregate their children's contracts; an empty
    // container is reported by the structure pass as a dead layer, and a
    // non-empty one inherits coverage from the children checked below.
    if (!e.leaf) continue;
    if (!c.emits_entry) {
      report.add(severity::error, diag_code::missing_trace_contract,
                 e.top_index, e.node->name(),
                 "layer (" + to_string(e.node->kind()) +
                     ") declares no trace contribution; its data flow "
                     "would be invisible to the HPC simulator");
      continue;
    }
    switch (e.node->kind()) {
      case nn::layer_kind::conv2d:
      case nn::layer_kind::depthwise_conv2d:
      case nn::layer_kind::linear:
        if (!c.records_active_inputs) {
          report.add(severity::error, diag_code::incomplete_trace_contract,
                     e.top_index, e.node->name(),
                     "parametric layer does not record its active-input "
                     "gather set; the weight-panel access pattern cannot "
                     "be replayed");
        }
        break;
      case nn::layer_kind::relu:
        if (!c.records_active_outputs) {
          report.add(severity::error, diag_code::incomplete_trace_contract,
                     e.top_index, e.node->name(),
                     "activation layer does not record its firing set; "
                     "activation sparsity — the detection signal itself — "
                     "would be unobservable");
        }
        break;
      default:
        break;
    }
  }
}

}  // namespace advh::analysis::detail
