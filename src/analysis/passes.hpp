// Internal pass interface of the static verifier. Each pass appends
// diagnostics to the shared report; passes are independent so one failing
// pass never masks another's findings.
#pragma once

#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/walk.hpp"
#include "nn/model.hpp"

namespace advh::analysis::detail {

void run_shape_pass(nn::model& m, verification_report& report);
void run_param_pass(nn::model& m, const std::vector<walk_entry>& graph,
                    verification_report& report);
void run_trace_pass(const std::vector<walk_entry>& graph,
                    verification_report& report);
void run_structure_pass(nn::model& m, const std::vector<walk_entry>& graph,
                        verification_report& report);

}  // namespace advh::analysis::detail
