#include "hpc/sim_backend.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"

namespace advh::hpc {

sim_backend::sim_backend(nn::model& m, const uarch::trace_gen_config& cfg,
                         noise_model noise, std::uint64_t seed)
    : model_(m), gen_(cfg), noise_(std::move(noise)), seed_(seed) {}

uarch::uarch_counts sim_backend::profile(const tensor& x,
                                         std::size_t& predicted) {
  nn::inference_trace trace = model_.trace_inference(x, predicted);
  return gen_.run(trace);
}

measurement sim_backend::measure_one(const tensor& x,
                                     std::span<const hpc_event> events,
                                     std::size_t repeats,
                                     uarch::trace_generator& gen,
                                     std::uint64_t stream) const {
  measurement out;
  std::size_t predicted = 0;
  nn::inference_trace trace = model_.trace_inference(x, predicted);
  const uarch::uarch_counts true_counts = gen.run(trace);
  out.predicted = predicted;

  rng noise_rng = rng::stream(seed_, stream);
  out.mean_counts.resize(events.size());
  out.stddev_counts.resize(events.size());
  for (std::size_t e = 0; e < events.size(); ++e) {
    const auto truth = static_cast<double>(extract(true_counts, events[e]));
    stats::running_stats acc;
    for (std::size_t r = 0; r < repeats; ++r) {
      acc.push(noise_.sample(events[e], truth, noise_rng));
    }
    out.mean_counts[e] = acc.mean();
    // Population stddev: 0 by construction at repeats == 1, never NaN.
    out.stddev_counts[e] = acc.stddev();
  }
  return out;
}

reading_block sim_backend::read_repetitions(const tensor& x,
                                            std::span<const hpc_event> events,
                                            std::size_t repeats,
                                            std::uint64_t stream) {
  ADVH_CHECK(repeats > 0);
  reading_block block;
  block.repetitions = repeats;
  block.num_events = events.size();
  block.values.assign(repeats * events.size(), 0.0);
  block.status.assign(repeats * events.size(), reading_block::read_status::ok);

  std::size_t predicted = 0;
  nn::inference_trace trace = model_.trace_inference(x, predicted);
  // Private replay context per call: trace_generator::run resets its cache
  // and predictor state on entry, so concurrent callers reproduce the same
  // cold-pipeline profile the serial path computes.
  uarch::trace_generator gen(gen_.config());
  const uarch::uarch_counts true_counts = gen.run(trace);
  block.predicted = predicted;

  // Same draw order as measure_one (event-outer, repetition-inner), keyed
  // purely by (seed, stream).
  rng noise_rng = rng::stream(seed_, stream);
  for (std::size_t e = 0; e < events.size(); ++e) {
    const auto truth = static_cast<double>(extract(true_counts, events[e]));
    for (std::size_t r = 0; r < repeats; ++r) {
      block.values[r * events.size() + e] =
          noise_.sample(events[e], truth, noise_rng);
    }
  }
  return block;
}

measurement sim_backend::do_measure(const tensor& x,
                                    std::span<const hpc_event> events,
                                    std::size_t repeats) {
  return measure_one(x, events, repeats, gen_, next_stream_++);
}

std::vector<measurement> sim_backend::do_measure_batch(
    std::span<const tensor> inputs, std::span<const hpc_event> events,
    std::size_t repeats, std::size_t threads) {
  std::vector<measurement> out(inputs.size());
  const std::uint64_t base = next_stream_;
  next_stream_ += inputs.size();

  const std::size_t workers = std::min(parallel::resolve_threads(threads),
                                       std::max<std::size_t>(inputs.size(), 1));
  if (workers <= 1 || inputs.size() < 2) {
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      out[i] = measure_one(inputs[i], events, repeats, gen_, base + i);
    }
    return out;
  }

  parallel::thread_pool pool(workers);
  // Per-worker replay contexts: trace_generator::run resets its cache and
  // predictor state on entry, so a private instance per worker reproduces
  // the cold-pipeline profile the serial path computes.
  std::vector<uarch::trace_generator> gens;
  gens.reserve(pool.size());
  for (std::size_t w = 0; w < pool.size(); ++w) gens.emplace_back(gen_.config());

  pool.run_chunks(inputs.size(),
                  [&](std::size_t begin, std::size_t end, std::size_t w) {
                    for (std::size_t i = begin; i < end; ++i) {
                      out[i] = measure_one(inputs[i], events, repeats, gens[w],
                                           base + i);
                    }
                  });
  return out;
}

}  // namespace advh::hpc
