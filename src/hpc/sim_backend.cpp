#include "hpc/sim_backend.hpp"

#include "common/error.hpp"
#include "common/stats.hpp"

namespace advh::hpc {

sim_backend::sim_backend(nn::model& m, const uarch::trace_gen_config& cfg,
                         noise_model noise, std::uint64_t seed)
    : model_(m), gen_(cfg), noise_(std::move(noise)), rng_(seed) {}

uarch::uarch_counts sim_backend::profile(const tensor& x,
                                         std::size_t& predicted) {
  nn::inference_trace trace = model_.trace_inference(x, predicted);
  return gen_.run(trace);
}

measurement sim_backend::measure(const tensor& x,
                                 std::span<const hpc_event> events,
                                 std::size_t repeats) {
  ADVH_CHECK(repeats > 0);
  measurement out;
  std::size_t predicted = 0;
  const uarch::uarch_counts true_counts = profile(x, predicted);
  out.predicted = predicted;

  out.mean_counts.resize(events.size());
  out.stddev_counts.resize(events.size());
  for (std::size_t e = 0; e < events.size(); ++e) {
    const auto truth = static_cast<double>(extract(true_counts, events[e]));
    stats::running_stats acc;
    for (std::size_t r = 0; r < repeats; ++r) {
      acc.push(noise_.sample(events[e], truth, rng_));
    }
    out.mean_counts[e] = acc.mean();
    out.stddev_counts[e] = acc.stddev();
  }
  return out;
}

}  // namespace advh::hpc
