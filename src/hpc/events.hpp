// The nine HPC events the paper studies: five "core" events (main
// evaluation, Table 2) and four cache-miss-related events (ablation,
// Table 3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "uarch/trace_gen.hpp"

namespace advh::hpc {

enum class hpc_event {
  instructions,
  branches,
  branch_misses,
  cache_references,
  cache_misses,
  l1d_load_misses,
  l1i_load_misses,
  llc_load_misses,
  llc_store_misses,
};

/// Number of supported events (size of per-event lookup tables).
inline constexpr std::size_t hpc_event_count = 9;

/// perf-style event name, e.g. "cache-misses".
std::string to_string(hpc_event e);
hpc_event event_from_string(const std::string& name);

/// The five core events of the main evaluation (N = 5).
std::vector<hpc_event> core_events();

/// The four cache events of the ablation study (N = 4).
std::vector<hpc_event> cache_ablation_events();

/// All nine supported events.
std::vector<hpc_event> all_events();

/// Extracts one event's value from a simulated event profile.
std::uint64_t extract(const uarch::uarch_counts& c, hpc_event e);

}  // namespace advh::hpc
