// Deterministic baseline-drift injecting monitor decorator.
//
// The fault_backend models *transient* counter failures; this decorator
// models the other long-horizon hazard: slow environmental drift of the
// microarchitectural baseline itself. DVFS transitions, co-tenant cache
// pressure, and kernel updates all shift the benign cache-miss
// distribution, so a detector calibrated at deployment time gradually
// disagrees with the machine it is running on.
//
// The injected drift multiplies the affected events' readings by a factor
// that is a pure function of the raw stream index — a step (factor jumps
// from 1 to `magnitude` at `onset_stream`) or a linear ramp (factor climbs
// from 1 to `magnitude` across `ramp_streams` stream units after onset).
// Because the factor depends only on the stream index, a drift episode
// replays bit-for-bit at any thread count and composes cleanly with
// fault_backend (faults on top of a drifted baseline) and
// resilient_monitor (retries of sample k stay inside sample k's stream
// region, so a retry sees the same drift factor as the original read).
#pragma once

#include <vector>

#include "hpc/monitor.hpp"

namespace advh::hpc {

struct drift_profile {
  enum class shape_kind : std::uint8_t { step, ramp };
  shape_kind shape = shape_kind::step;
  /// Steady-state multiplier applied to affected events (> 0; 2.0 models
  /// the "co-tenant doubles the cache-miss baseline" scenario).
  double magnitude = 2.0;
  /// Raw stream index at which the drift begins.
  std::uint64_t onset_stream = 0;
  /// Ramp length in stream units (ignored for step). The factor reaches
  /// `magnitude` at onset_stream + ramp_streams.
  std::uint64_t ramp_streams = 0;
  /// Events the drift applies to; empty = every requested event.
  std::vector<hpc_event> events;
};

class drift_backend final : public hpc_monitor, public raw_reader {
 public:
  /// Takes ownership of `inner`, which must implement raw_reader
  /// (unsupported_error otherwise). `profile.magnitude` must be positive.
  drift_backend(monitor_ptr inner, drift_profile profile);

  std::string backend_name() const override {
    return "drift(" + inner_->backend_name() + ")";
  }

  /// The drift multiplier in effect at `stream` (1.0 before onset).
  double factor_at(std::uint64_t stream) const noexcept;

  /// Inner readings with the drift factor applied; deterministic in
  /// `stream`.
  reading_block read_repetitions(const tensor& x,
                                 std::span<const hpc_event> events,
                                 std::size_t repeats,
                                 std::uint64_t stream) override;

  const drift_profile& profile() const noexcept { return profile_; }

 protected:
  measurement do_measure(const tensor& x, std::span<const hpc_event> events,
                         std::size_t repeats) override;

 private:
  bool affects(hpc_event e) const noexcept;

  monitor_ptr inner_;
  raw_reader* reader_;  ///< inner_ viewed through its raw_reader facet
  drift_profile profile_;
  std::uint64_t next_stream_ = 0;
};

}  // namespace advh::hpc
