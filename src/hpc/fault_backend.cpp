#include "hpc/fault_backend.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace advh::hpc {

namespace {

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

/// Salt for the per-event loss-onset streams, far away from the sample
/// stream indices the measurement path uses.
constexpr std::uint64_t kLossSalt = 0xADF0'0000'0000'0000ULL;

/// Geometric draw: number of stream units survived before an event with
/// per-unit hazard `rate` dies.
std::uint64_t draw_loss_onset(std::uint64_t seed, std::size_t event_index,
                              double rate) {
  if (rate <= 0.0) return kNever;
  if (rate >= 1.0) return 0;
  rng gen = rng::stream(seed, kLossSalt + event_index);
  const double u = gen.uniform();
  const double onset = std::log(1.0 - u) / std::log(1.0 - rate);
  if (!(onset < 1e18)) return kNever;
  return static_cast<std::uint64_t>(onset);
}

}  // namespace

fault_backend::fault_backend(monitor_ptr inner, fault_config cfg)
    : inner_(std::move(inner)), cfg_(cfg) {
  ADVH_CHECK(inner_ != nullptr);
  reader_ = dynamic_cast<raw_reader*>(inner_.get());
  if (reader_ == nullptr) {
    throw unsupported_error("fault_backend requires a raw_reader inner "
                            "backend (got " +
                            inner_->backend_name() + ")");
  }
  for (std::size_t i = 0; i < hpc_event_count; ++i) {
    loss_onset_[i] = draw_loss_onset(cfg_.seed, i, cfg_.permanent_loss_rate);
  }
}

std::uint64_t fault_backend::loss_onset(hpc_event e) const noexcept {
  return loss_onset_[static_cast<std::size_t>(e)];
}

reading_block fault_backend::read_repetitions(const tensor& x,
                                              std::span<const hpc_event> events,
                                              std::size_t repeats,
                                              std::uint64_t stream) {
  reading_block block = reader_->read_repetitions(x, events, repeats, stream);

  rng faults = rng::stream(cfg_.seed, stream);

  // A hung read stalls the caller and then every repetition in the block
  // reports as timed out. The stall length does not influence any value.
  if (faults.bernoulli(cfg_.hang_rate)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(cfg_.hang_ms));
    for (auto& s : block.status) {
      if (s == reading_block::read_status::ok) {
        s = reading_block::read_status::transient_failure;
      }
    }
    return block;
  }

  const std::size_t n_events = events.size();
  std::vector<double> last_good(n_events,
                                std::numeric_limits<double>::quiet_NaN());
  for (std::size_t r = 0; r < block.repetitions; ++r) {
    for (std::size_t e = 0; e < n_events; ++e) {
      // Fixed draw count per cell keeps the fault pattern a pure function
      // of (seed, stream), independent of earlier outcomes.
      const bool fail = faults.bernoulli(cfg_.read_failure_rate);
      const bool spike = faults.bernoulli(cfg_.spike_rate);
      const bool stuck = faults.bernoulli(cfg_.stuck_rate);

      const std::size_t idx = r * n_events + e;
      if (stream >= loss_onset(events[e])) {
        block.status[idx] = reading_block::read_status::event_lost;
        continue;
      }
      if (block.status[idx] != reading_block::read_status::ok) continue;
      if (fail) {
        block.status[idx] = reading_block::read_status::transient_failure;
        continue;
      }
      if (stuck && !std::isnan(last_good[e])) {
        block.values[idx] = last_good[e];
      } else if (spike) {
        block.values[idx] *= cfg_.spike_magnitude;
      }
      last_good[e] = block.values[idx];
    }
  }
  return block;
}

measurement fault_backend::do_measure(const tensor& x,
                                      std::span<const hpc_event> events,
                                      std::size_t repeats) {
  return aggregate_block_naive(read_repetitions(x, events, repeats,
                                                next_stream_++),
                               repeats);
}

}  // namespace advh::hpc
