// Simulator-backed HPC monitor.
//
// Substitutes for perf on machines (or containers) where perf_event_open
// is unavailable: the inference runs for real, its data-flow trace is
// replayed through the microarchitecture simulator, and the resulting true
// counts are observed R times through the measurement-noise model — the
// same protocol the paper uses on real counters.
#pragma once

#include "hpc/monitor.hpp"
#include "hpc/noise.hpp"
#include "nn/model.hpp"
#include "uarch/trace_gen.hpp"

namespace advh::hpc {

class sim_backend final : public hpc_monitor {
 public:
  /// The monitor borrows the model; callers keep it alive.
  explicit sim_backend(nn::model& m, const uarch::trace_gen_config& cfg = {},
                       noise_model noise = noise_model{},
                       std::uint64_t seed = 99);

  measurement measure(const tensor& x, std::span<const hpc_event> events,
                      std::size_t repeats) override;

  std::string backend_name() const override { return "simulator"; }

  /// Deterministic (noise-free) event profile of one input.
  uarch::uarch_counts profile(const tensor& x, std::size_t& predicted);

 private:
  nn::model& model_;
  uarch::trace_generator gen_;
  noise_model noise_;
  rng rng_;
};

}  // namespace advh::hpc
