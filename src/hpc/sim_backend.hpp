// Simulator-backed HPC monitor.
//
// Substitutes for perf on machines (or containers) where perf_event_open
// is unavailable: the inference runs for real, its data-flow trace is
// replayed through the microarchitecture simulator, and the resulting true
// counts are observed R times through the measurement-noise model — the
// same protocol the paper uses on real counters.
//
// Determinism contract: the noise applied to sample k (counting every
// input ever measured through this monitor, in submission order) depends
// only on (seed, k) — never on which worker measured it or how many
// threads were in flight. Serial `measure` loops, `measure_batch` at one
// thread, and `measure_batch` at N threads therefore produce bitwise
// identical measurements. The raw_reader interface extends the same
// contract to explicit stream indices, which is what the resilient
// decorator stack keys its retries on.
#pragma once

#include "hpc/monitor.hpp"
#include "hpc/noise.hpp"
#include "nn/model.hpp"
#include "uarch/trace_gen.hpp"

namespace advh::hpc {

class sim_backend final : public hpc_monitor, public raw_reader {
 public:
  /// The monitor borrows the model; callers keep it alive.
  explicit sim_backend(nn::model& m, const uarch::trace_gen_config& cfg = {},
                       noise_model noise = noise_model{},
                       std::uint64_t seed = 99);

  std::string backend_name() const override { return "simulator"; }

  /// Deterministic (noise-free) event profile of one input.
  uarch::uarch_counts profile(const tensor& x, std::size_t& predicted);

  /// Raw repetition readings at an explicit noise-stream index. Does not
  /// advance the monitor's own stream counter, and is safe to call from
  /// multiple threads concurrently (each call replays through a private
  /// trace generator; the shared model's traced forward is read-only).
  reading_block read_repetitions(const tensor& x,
                                 std::span<const hpc_event> events,
                                 std::size_t repeats,
                                 std::uint64_t stream) override;

 protected:
  measurement do_measure(const tensor& x, std::span<const hpc_event> events,
                         std::size_t repeats) override;

  /// Parallel batch measurement: workers each replay traces through their
  /// own trace_generator, and every input draws noise from its own
  /// (seed, sample-index) stream.
  std::vector<measurement> do_measure_batch(std::span<const tensor> inputs,
                                            std::span<const hpc_event> events,
                                            std::size_t repeats,
                                            std::size_t threads) override;

 private:
  measurement measure_one(const tensor& x, std::span<const hpc_event> events,
                          std::size_t repeats, uarch::trace_generator& gen,
                          std::uint64_t stream) const;

  nn::model& model_;
  uarch::trace_generator gen_;
  noise_model noise_;
  std::uint64_t seed_;
  std::uint64_t next_stream_ = 0;  ///< samples measured so far
};

}  // namespace advh::hpc
