#include "hpc/events.hpp"

#include "common/error.hpp"

namespace advh::hpc {

std::string to_string(hpc_event e) {
  switch (e) {
    case hpc_event::instructions:
      return "instructions";
    case hpc_event::branches:
      return "branches";
    case hpc_event::branch_misses:
      return "branch-misses";
    case hpc_event::cache_references:
      return "cache-references";
    case hpc_event::cache_misses:
      return "cache-misses";
    case hpc_event::l1d_load_misses:
      return "L1-dcache-load-misses";
    case hpc_event::l1i_load_misses:
      return "L1-icache-load-misses";
    case hpc_event::llc_load_misses:
      return "LLC-load-misses";
    case hpc_event::llc_store_misses:
      return "LLC-store-misses";
  }
  return "?";
}

hpc_event event_from_string(const std::string& name) {
  for (hpc_event e : all_events()) {
    if (to_string(e) == name) return e;
  }
  throw invariant_error("unknown HPC event: " + name);
}

std::vector<hpc_event> core_events() {
  return {hpc_event::instructions, hpc_event::branches,
          hpc_event::branch_misses, hpc_event::cache_references,
          hpc_event::cache_misses};
}

std::vector<hpc_event> cache_ablation_events() {
  return {hpc_event::l1d_load_misses, hpc_event::l1i_load_misses,
          hpc_event::llc_load_misses, hpc_event::llc_store_misses};
}

std::vector<hpc_event> all_events() {
  auto v = core_events();
  for (hpc_event e : cache_ablation_events()) v.push_back(e);
  return v;
}

std::uint64_t extract(const uarch::uarch_counts& c, hpc_event e) {
  switch (e) {
    case hpc_event::instructions:
      return c.instructions;
    case hpc_event::branches:
      return c.branches;
    case hpc_event::branch_misses:
      return c.branch_misses;
    case hpc_event::cache_references:
      return c.cache_references;
    case hpc_event::cache_misses:
      return c.cache_misses;
    case hpc_event::l1d_load_misses:
      return c.l1d_load_misses;
    case hpc_event::l1i_load_misses:
      return c.l1i_load_misses;
    case hpc_event::llc_load_misses:
      return c.llc_load_misses;
    case hpc_event::llc_store_misses:
      return c.llc_store_misses;
  }
  return 0;
}

}  // namespace advh::hpc
