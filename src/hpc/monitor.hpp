// HPC measurement interface.
//
// A monitor wraps a DNN deployment the defender can query: it submits one
// input, observes the hard-label prediction, and returns per-event counter
// statistics averaged over R measurement repetitions — exactly the
// defender's view in the paper's threat model (Section 4).
//
// Real counters are not the paper's idealised ones: reads fail
// transiently, the PMU multiplexes events, co-tenant noise spikes counts,
// and events can disappear mid-session. Every measurement therefore
// carries a `measurement::quality` report describing how trustworthy it
// is, and backends that can address raw repetition readings by an explicit
// stream index implement `raw_reader`, the capability the resilient
// decorator stack (fault_backend / resilient_monitor) is built on.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "hpc/events.hpp"
#include "tensor/tensor.hpp"

namespace advh {
class cancel_token;  // common/retry.hpp
}

namespace advh::hpc {

/// Deadline budget for one measurement (or one batch). The serve layer
/// derives a budget from the request's remaining deadline and the current
/// degradation-ladder rung; the resilient layer spends it: retry rounds
/// are capped, backoff sleeps can be suppressed, and a cancelled token
/// aborts further retries mid-measurement (graceful drain). A
/// default-constructed budget changes nothing — backends without a retry
/// loop ignore it entirely — and because the budget only *truncates* the
/// retry schedule (stream indices are still keyed on sample/attempt
/// alone), measurements under any fixed budget remain bitwise
/// thread-count-invariant.
struct measure_budget {
  static constexpr std::size_t unlimited = ~static_cast<std::size_t>(0);

  /// Ceiling on retry rounds (re-reads after the first) the resilient
  /// layer may spend per sample. 0 = first read only; unlimited = whatever
  /// the retry policy allows.
  std::size_t max_retry_rounds = unlimited;
  /// When false, retry rounds run back to back without backoff sleeps —
  /// under a tight deadline, sleeping is worse than a busy re-read.
  bool allow_backoff = true;
  /// Optional cancellation: a cancelled token stops further retry rounds
  /// (and cuts any pending backoff sleep short). Non-owning.
  const cancel_token* cancel = nullptr;
};

struct measurement {
  /// Provenance/trust report for one measurement. An empty `available`
  /// vector means "every requested event was measured normally" — the
  /// fast path for backends that predate the resilience layer.
  struct quality {
    /// Per requested event: 1 when the event was actually measured for
    /// this sample, 0 when it was unavailable (permanently lost counter,
    /// or every repetition failed). Empty = all available.
    std::vector<std::uint8_t> available;
    /// Per requested event: 1 when the reported count was scaled by
    /// time_enabled/time_running because the PMU multiplexed the event.
    /// Empty = no scaling occurred.
    std::vector<std::uint8_t> multiplexed;
    /// Retry rounds the resilient layer spent refilling failed
    /// repetitions for this sample.
    std::uint32_t retries = 0;
    /// Repetitions rejected by robust (median/MAD) aggregation.
    std::uint32_t outliers_rejected = 0;
    /// Repetitions that stayed failed after the retry budget ran out.
    std::uint32_t failed_repetitions = 0;
    /// The R the caller asked for (0 when the backend does not report it).
    std::uint32_t repetitions = 0;

    bool event_available(std::size_t e) const noexcept {
      return available.empty() || (e < available.size() && available[e] != 0);
    }
    /// True when at least one requested event was unavailable.
    bool degraded() const noexcept {
      for (const std::uint8_t a : available) {
        if (a == 0) return true;
      }
      return false;
    }
  };

  /// Mean counter value per requested event (the paper's E-bar).
  std::vector<double> mean_counts;
  /// Per-event standard deviation across the R repetitions.
  std::vector<double> stddev_counts;
  /// The DNN's hard-label prediction for the submitted input.
  std::size_t predicted = 0;
  /// Trust report (see above); default-constructed = fully trusted.
  quality q;
};

/// One block of raw per-repetition counter readings, before aggregation.
/// Produced by `raw_reader` backends; consumed by the resilient layer,
/// which retries failures and aggregates robustly.
struct reading_block {
  enum class read_status : std::uint8_t {
    ok = 0,                ///< value holds a real reading
    transient_failure = 1, ///< this read failed; a retry may succeed
    event_lost = 2,        ///< the counter is permanently gone
  };

  std::size_t repetitions = 0;
  std::size_t num_events = 0;
  /// Hard-label prediction of the inference the readings were taken
  /// around. The prediction comes from the model, not the counters, so it
  /// survives every counter fault.
  std::size_t predicted = 0;
  /// values[rep * num_events + event]; meaningful only where the
  /// corresponding status is ok.
  std::vector<double> values;
  std::vector<read_status> status;
  /// Per event: 1 when any repetition's count was multiplex-scaled.
  /// Empty = none.
  std::vector<std::uint8_t> multiplexed;

  double value_at(std::size_t rep, std::size_t event) const {
    return values[rep * num_events + event];
  }
  read_status status_at(std::size_t rep, std::size_t event) const {
    return status[rep * num_events + event];
  }
};

/// Naive aggregation of a raw reading block into a measurement: failed
/// repetitions are dropped, surviving values are trusted verbatim, and an
/// event with zero surviving repetitions (or a permanent loss) reports
/// mean 0 with quality.available = 0. This is what an unprotected
/// decorator (fault or drift injection without the resilient layer) feeds
/// the detector; resilient_monitor replaces it with retry + robust
/// aggregation.
measurement aggregate_block_naive(const reading_block& block,
                                  std::size_t repeats);

/// Capability interface: backends whose raw repetition readings can be
/// addressed by an explicit stream index. The index — not call order —
/// fully determines any simulated randomness, which is what lets the
/// resilient layer retry and parallelise without losing bitwise
/// reproducibility. Implementations must be safe to call concurrently
/// from multiple threads.
class raw_reader {
 public:
  virtual ~raw_reader() = default;

  /// Takes `repeats` raw readings of `events` around one inference of `x`.
  /// Simulated backends derive all stochastic behaviour from `stream`;
  /// hardware backends ignore it.
  virtual reading_block read_repetitions(const tensor& x,
                                         std::span<const hpc_event> events,
                                         std::size_t repeats,
                                         std::uint64_t stream) = 0;
};

class hpc_monitor {
 public:
  virtual ~hpc_monitor() = default;
  hpc_monitor(const hpc_monitor&) = delete;
  hpc_monitor& operator=(const hpc_monitor&) = delete;

  /// Runs inference on one example (batch-of-one tensor), sampling the
  /// given events `repeats` times (the paper's R; 10 by default there).
  /// Throws std::invalid_argument when repeats == 0 — this validation is
  /// the non-virtual boundary, so every backend inherits it.
  measurement measure(const tensor& x, std::span<const hpc_event> events,
                      std::size_t repeats);

  /// Deadline-budgeted variant: the budget caps what the resilient layer
  /// may spend on retries/backoff (see measure_budget). Backends without
  /// a retry loop behave exactly like the unbudgeted overload.
  measurement measure(const tensor& x, std::span<const hpc_event> events,
                      std::size_t repeats, const measure_budget& budget);

  /// Measures a batch of independent inputs; out[i] corresponds to
  /// inputs[i]. The base implementation is a serial loop over `measure`
  /// (hardware counters multiplex one physical PMU, so the perf backend
  /// cannot parallelise). Backends whose measurements are simulated may
  /// run workers concurrently; any override must return results that are
  /// bitwise identical to the serial loop. `threads` follows
  /// advh::resolve_threads semantics: 0 means the ADVH_THREADS override
  /// or, failing that, hardware concurrency. Throws std::invalid_argument
  /// when repeats == 0.
  std::vector<measurement> measure_batch(std::span<const tensor> inputs,
                                         std::span<const hpc_event> events,
                                         std::size_t repeats,
                                         std::size_t threads = 0);

  /// Deadline-budgeted batch variant; every sample in the batch runs
  /// under the same budget.
  std::vector<measurement> measure_batch(std::span<const tensor> inputs,
                                         std::span<const hpc_event> events,
                                         std::size_t repeats,
                                         std::size_t threads,
                                         const measure_budget& budget);

  virtual std::string backend_name() const = 0;

 protected:
  hpc_monitor() = default;

  /// Backend implementation of `measure`; repeats > 0 is guaranteed.
  virtual measurement do_measure(const tensor& x,
                                 std::span<const hpc_event> events,
                                 std::size_t repeats) = 0;

  /// Backend implementation of `measure_batch`; defaults to a serial loop
  /// over do_measure.
  virtual std::vector<measurement> do_measure_batch(
      std::span<const tensor> inputs, std::span<const hpc_event> events,
      std::size_t repeats, std::size_t threads);

  /// Budgeted backend hooks. The defaults ignore the budget and forward
  /// to the unbudgeted implementations — only layers that actually spend
  /// time on retries (resilient_monitor) override these.
  virtual measurement do_measure_budgeted(const tensor& x,
                                          std::span<const hpc_event> events,
                                          std::size_t repeats,
                                          const measure_budget& budget);

  virtual std::vector<measurement> do_measure_batch_budgeted(
      std::span<const tensor> inputs, std::span<const hpc_event> events,
      std::size_t repeats, std::size_t threads, const measure_budget& budget);
};

using monitor_ptr = std::unique_ptr<hpc_monitor>;

}  // namespace advh::hpc
