// HPC measurement interface.
//
// A monitor wraps a DNN deployment the defender can query: it submits one
// input, observes the hard-label prediction, and returns per-event counter
// statistics averaged over R measurement repetitions — exactly the
// defender's view in the paper's threat model (Section 4).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "hpc/events.hpp"
#include "tensor/tensor.hpp"

namespace advh::hpc {

struct measurement {
  /// Mean counter value per requested event (the paper's E-bar).
  std::vector<double> mean_counts;
  /// Per-event standard deviation across the R repetitions.
  std::vector<double> stddev_counts;
  /// The DNN's hard-label prediction for the submitted input.
  std::size_t predicted = 0;
};

class hpc_monitor {
 public:
  virtual ~hpc_monitor() = default;
  hpc_monitor(const hpc_monitor&) = delete;
  hpc_monitor& operator=(const hpc_monitor&) = delete;

  /// Runs inference on one example (batch-of-one tensor), sampling the
  /// given events `repeats` times (the paper's R; 10 by default there).
  virtual measurement measure(const tensor& x,
                              std::span<const hpc_event> events,
                              std::size_t repeats) = 0;

  /// Measures a batch of independent inputs; out[i] corresponds to
  /// inputs[i]. The base implementation is a serial loop over `measure`
  /// (hardware counters multiplex one physical PMU, so the perf backend
  /// cannot parallelise). Backends whose measurements are simulated may
  /// run workers concurrently; any override must return results that are
  /// bitwise identical to the serial loop. `threads` follows
  /// advh::resolve_threads semantics: 0 means the ADVH_THREADS override
  /// or, failing that, hardware concurrency.
  virtual std::vector<measurement> measure_batch(
      std::span<const tensor> inputs, std::span<const hpc_event> events,
      std::size_t repeats, std::size_t threads = 0);

  virtual std::string backend_name() const = 0;

 protected:
  hpc_monitor() = default;
};

using monitor_ptr = std::unique_ptr<hpc_monitor>;

}  // namespace advh::hpc
