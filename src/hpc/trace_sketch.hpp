// Compact per-measurement HPC trace sketches for the tracking layer.
//
// The query tracker (src/track) keeps per-client history on the *input*
// side (content fingerprints) and on the *measurement* side: a campaign of
// near-duplicate probes exercises the network almost identically, so the
// per-event counter means of consecutive probes from one attacking client
// sit on top of each other while an honest client's distinct queries
// scatter. A trace sketch compresses one measurement into a few quantized
// log-scale levels — small enough to keep per client at million-user
// scale, stable enough that near-duplicate computations collide.
//
// Sketching is a pure function of the measurement (no clock, no RNG), so
// sketches inherit the measurement engine's bitwise thread-invariance.
#pragma once

#include <cstdint>
#include <vector>

#include "hpc/monitor.hpp"

namespace advh::hpc {

/// Quantized summary of one measurement's per-event counter levels.
struct trace_sketch {
  /// Per requested event: the quantized log2 counter level, or
  /// `unavailable` when the event was not measured. Quantization is in
  /// quarter-octaves — coarse enough to absorb measurement noise, fine
  /// enough that different inputs land in different cells.
  std::vector<std::int16_t> levels;
  /// Order-free 64-bit digest of `levels` (equal sketches <=> near-equal
  /// traces at sketch resolution).
  std::uint64_t signature = 0;

  static constexpr std::int16_t unavailable = INT16_MIN;

  bool empty() const noexcept { return levels.empty(); }
  std::size_t bytes() const noexcept {
    return levels.capacity() * sizeof(std::int16_t) + sizeof(signature);
  }
};

/// Sketches one measurement: per available event,
/// level = round(4 * log2(1 + |mean_count|)); unavailable events record
/// trace_sketch::unavailable and are skipped by the distance.
trace_sketch sketch_measurement(const measurement& m);

/// Mean absolute level difference over the events available in *both*
/// sketches (quarter-octaves). Returns +inf when the sketches share no
/// available event or differ in event count — incomparable sketches must
/// never read as "identical traces".
double sketch_distance(const trace_sketch& a, const trace_sketch& b) noexcept;

}  // namespace advh::hpc
