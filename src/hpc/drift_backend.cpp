#include "hpc/drift_backend.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace advh::hpc {

drift_backend::drift_backend(monitor_ptr inner, drift_profile profile)
    : inner_(std::move(inner)), profile_(std::move(profile)) {
  ADVH_CHECK(inner_ != nullptr);
  ADVH_CHECK_MSG(profile_.magnitude > 0.0,
                 "drift magnitude must be positive");
  reader_ = dynamic_cast<raw_reader*>(inner_.get());
  if (reader_ == nullptr) {
    throw unsupported_error("drift_backend requires a raw_reader inner "
                            "backend (got " +
                            inner_->backend_name() + ")");
  }
}

double drift_backend::factor_at(std::uint64_t stream) const noexcept {
  if (stream < profile_.onset_stream) return 1.0;
  if (profile_.shape == drift_profile::shape_kind::step ||
      profile_.ramp_streams == 0) {
    return profile_.magnitude;
  }
  const std::uint64_t into = stream - profile_.onset_stream;
  if (into >= profile_.ramp_streams) return profile_.magnitude;
  const double t = static_cast<double>(into) /
                   static_cast<double>(profile_.ramp_streams);
  return 1.0 + t * (profile_.magnitude - 1.0);
}

bool drift_backend::affects(hpc_event e) const noexcept {
  if (profile_.events.empty()) return true;
  return std::find(profile_.events.begin(), profile_.events.end(), e) !=
         profile_.events.end();
}

reading_block drift_backend::read_repetitions(const tensor& x,
                                              std::span<const hpc_event> events,
                                              std::size_t repeats,
                                              std::uint64_t stream) {
  reading_block block = reader_->read_repetitions(x, events, repeats, stream);
  const double factor = factor_at(stream);
  if (factor == 1.0) return block;
  for (std::size_t r = 0; r < block.repetitions; ++r) {
    for (std::size_t e = 0; e < block.num_events; ++e) {
      const std::size_t idx = r * block.num_events + e;
      if (block.status[idx] != reading_block::read_status::ok) continue;
      if (!affects(events[e])) continue;
      block.values[idx] *= factor;
    }
  }
  return block;
}

measurement drift_backend::do_measure(const tensor& x,
                                      std::span<const hpc_event> events,
                                      std::size_t repeats) {
  return aggregate_block_naive(read_repetitions(x, events, repeats,
                                                next_stream_++),
                               repeats);
}

}  // namespace advh::hpc
