// Monitor construction with graceful fallback: prefer the native perf
// backend when the kernel permits it, otherwise the simulator — plus
// optional decoration with the fault-injection and resilience layers.
//
// Chaos wiring: when the ADVH_FAULT_RATE environment variable is set to a
// positive rate, the convenience make_monitor overload wraps whatever
// backend it builds in fault_backend (deterministic injected faults at
// that rate) and resilient_monitor (retry + robust aggregation), so the
// whole test/bench suite can be exercised under measurement faults
// without touching call sites.
#pragma once

#include <optional>

#include "hpc/drift_backend.hpp"
#include "hpc/fault_backend.hpp"
#include "hpc/monitor.hpp"
#include "hpc/resilient_monitor.hpp"
#include "hpc/sim_backend.hpp"
#include "nn/model.hpp"

namespace advh::hpc {

enum class backend_kind { auto_detect, simulator, perf };

struct monitor_options {
  backend_kind kind = backend_kind::auto_detect;
  uarch::trace_gen_config sim_cfg{};
  std::uint64_t noise_seed = 99;
  /// When set, the base backend is wrapped in a drift_backend shifting
  /// the counter baseline (drift chaos testing). Applied closest to the
  /// hardware, under the fault layer: faults corrupt an already-drifted
  /// baseline, which is the order deployments experience.
  std::optional<drift_profile> drift;
  /// When set, the (possibly drifted) backend is wrapped in a
  /// fault_backend injecting deterministic faults (chaos testing).
  std::optional<fault_config> faults;
  /// When set, the (possibly drifted/faulty) stack is wrapped in a
  /// resilient_monitor.
  std::optional<resilience_config> resilience;
};

/// Builds the monitor stack described by `opts` over `m`. With
/// auto_detect, perf is used when available and the simulator otherwise.
/// The returned monitor borrows the model; callers keep it alive.
monitor_ptr make_monitor(nn::model& m, const monitor_options& opts);

/// Convenience overload. Honours the ADVH_FAULT_RATE and ADVH_DRIFT_RATE
/// chaos overrides (see fault_config_from_env / drift_profile_from_env);
/// pass explicit monitor_options to opt out.
monitor_ptr make_monitor(nn::model& m,
                         backend_kind kind = backend_kind::auto_detect,
                         const uarch::trace_gen_config& sim_cfg = {},
                         std::uint64_t noise_seed = 99);

/// Parses the ADVH_FAULT_RATE environment variable into a fault profile:
/// transient read failures at the given rate, spikes at half of it, and
/// stuck-at reads at a quarter. Returns nullopt when unset or 0; throws
/// std::invalid_argument when set to a negative, non-numeric, or > 1
/// value (a broken chaos knob must not silently disable the chaos).
std::optional<fault_config> fault_config_from_env();

/// Parses the ADVH_DRIFT_RATE environment variable into a drift profile:
/// a whole-session baseline step of magnitude (1 + rate) on every event,
/// active from stream 0 — i.e. the suite runs as if deployed on a machine
/// whose baseline differs from the reference by that factor. Returns
/// nullopt when unset or 0; throws std::invalid_argument when set to a
/// negative, non-numeric, or implausibly large value.
std::optional<drift_profile> drift_profile_from_env();

}  // namespace advh::hpc
