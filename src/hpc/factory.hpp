// Monitor construction with graceful fallback: prefer the native perf
// backend when the kernel permits it, otherwise the simulator.
#pragma once

#include "hpc/monitor.hpp"
#include "hpc/sim_backend.hpp"
#include "nn/model.hpp"

namespace advh::hpc {

enum class backend_kind { auto_detect, simulator, perf };

/// Builds a monitor over `m`. With auto_detect, perf is used when
/// available and the simulator otherwise. The returned monitor borrows the
/// model; callers keep it alive.
monitor_ptr make_monitor(nn::model& m,
                         backend_kind kind = backend_kind::auto_detect,
                         const uarch::trace_gen_config& sim_cfg = {},
                         std::uint64_t noise_seed = 99);

}  // namespace advh::hpc
