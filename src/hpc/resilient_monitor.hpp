// Resilient measurement decorator.
//
// Turns a best-effort raw_reader backend into a measurement contract the
// detector can trust:
//   * per-repetition retry — failed readings are re-read with capped
//     exponential backoff (common/retry) until the R requested
//     repetitions are filled or the attempt budget runs out;
//   * robust aggregation — the surviving repetitions are trimmed by
//     median/MAD outlier rejection before the mean/stddev the detector
//     consumes are computed, so co-tenant spikes cannot drag the paper's
//     E-bar statistic;
//   * graceful degradation — an event reported permanently lost is
//     dropped from the active set and the measurement's quality mask
//     records the surviving subset instead of the run failing.
//
// Determinism contract: every stochastic decision for sample k (noise,
// faults, retries) is keyed on stream indices derived from k alone —
// attempt a of sample k reads at stream k * attempt_stride + a — so
// serial measures, 1-thread batches, and N-thread batches are bitwise
// identical, fault storms included.
#pragma once

#include <mutex>
#include <set>

#include "common/retry.hpp"
#include "hpc/monitor.hpp"

namespace advh::hpc {

struct resilience_config {
  /// Per-sample retry budget for refilling failed repetitions.
  retry_policy retry{};
  /// Reject repetitions farther than this many (MAD-estimated) standard
  /// deviations from the per-event median. <= 0 disables rejection.
  double mad_multiplier = 3.5;
  /// An event whose surviving repetitions fall below this count is
  /// reported unavailable for the sample (quality.available = 0).
  std::size_t min_repetitions = 1;
  /// Master switch for median/MAD trimming (retries are always on).
  bool robust_aggregation = true;
};

class resilient_monitor final : public hpc_monitor {
 public:
  /// Retry attempts are encoded into the inner stream index; the policy's
  /// max_attempts must not exceed this stride.
  static constexpr std::uint64_t attempt_stride = 8;

  /// Takes ownership of `inner`, which must implement raw_reader
  /// (unsupported_error otherwise).
  explicit resilient_monitor(monitor_ptr inner,
                             resilience_config cfg = resilience_config{});

  std::string backend_name() const override {
    return "resilient(" + inner_->backend_name() + ")";
  }

  /// Events observed permanently lost so far (sorted). A lost event stays
  /// in measurement vectors — with quality.available = 0 — so event
  /// indices keep lining up with the detector configuration.
  std::vector<hpc_event> lost_events() const;

  /// The subset of `requested` not yet observed permanently lost.
  std::vector<hpc_event> surviving(std::span<const hpc_event> requested) const;

  const resilience_config& config() const noexcept { return cfg_; }

 protected:
  measurement do_measure(const tensor& x, std::span<const hpc_event> events,
                         std::size_t repeats) override;

  /// Parallel over samples; bitwise identical at any thread count.
  std::vector<measurement> do_measure_batch(std::span<const tensor> inputs,
                                            std::span<const hpc_event> events,
                                            std::size_t repeats,
                                            std::size_t threads) override;

  /// Budgeted variants: the budget caps retry rounds, suppresses backoff
  /// sleeps, and honours cancellation (see measure_budget). A budget only
  /// truncates the retry schedule — stream indices stay keyed on
  /// (sample, attempt) — so any fixed budget is bitwise thread-invariant.
  measurement do_measure_budgeted(const tensor& x,
                                  std::span<const hpc_event> events,
                                  std::size_t repeats,
                                  const measure_budget& budget) override;

  std::vector<measurement> do_measure_batch_budgeted(
      std::span<const tensor> inputs, std::span<const hpc_event> events,
      std::size_t repeats, std::size_t threads,
      const measure_budget& budget) override;

 private:
  measurement measure_sample(const tensor& x, std::span<const hpc_event> events,
                             std::size_t repeats, std::uint64_t sample_index,
                             const measure_budget& budget) const;

  monitor_ptr inner_;
  raw_reader* reader_;  ///< inner_ viewed through its raw_reader facet
  resilience_config cfg_;
  std::uint64_t next_sample_ = 0;
  /// Permanently-lost events seen so far — reporting only; measurement
  /// content for sample k depends on k alone, never on this set.
  mutable std::mutex lost_mutex_;
  mutable std::set<hpc_event> lost_;
};

}  // namespace advh::hpc
