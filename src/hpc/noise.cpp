#include "hpc/noise.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace advh::hpc {

noise_model::noise_model() {
  specs_.assign(all_events().size(), noise_spec{});
  // High-rate pipeline events: tiny relative jitter, sizeable background.
  spec(hpc_event::instructions) = {0.002, 40000.0};
  spec(hpc_event::branches) = {0.002, 8000.0};
  spec(hpc_event::branch_misses) = {0.02, 300.0};
  // Cache events: moderate jitter, small background.
  spec(hpc_event::cache_references) = {0.03, 900.0};
  spec(hpc_event::cache_misses) = {0.015, 120.0};
  spec(hpc_event::l1d_load_misses) = {0.02, 500.0};
  spec(hpc_event::l1i_load_misses) = {0.03, 150.0};
  spec(hpc_event::llc_load_misses) = {0.025, 80.0};
  spec(hpc_event::llc_store_misses) = {0.025, 60.0};
}

noise_spec& noise_model::spec(hpc_event e) {
  const auto idx = static_cast<std::size_t>(e);
  ADVH_CHECK(idx < specs_.size());
  return specs_[idx];
}

const noise_spec& noise_model::spec(hpc_event e) const {
  const auto idx = static_cast<std::size_t>(e);
  ADVH_CHECK(idx < specs_.size());
  return specs_[idx];
}

double noise_model::sample(hpc_event e, double true_count, rng& gen) const {
  const noise_spec& s = spec(e);
  double v = true_count;
  if (s.rel_sigma > 0.0) v *= gen.normal(1.0, s.rel_sigma);
  if (s.background_mean > 0.0) {
    v += static_cast<double>(gen.poisson(s.background_mean));
  }
  return std::max(v, 0.0);
}

noise_model noise_model::none() {
  noise_model m;
  for (auto& s : m.specs_) s = noise_spec{0.0, 0.0};
  return m;
}

}  // namespace advh::hpc
