#include "hpc/resilient_monitor.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"

namespace advh::hpc {

namespace {

/// 1.4826 * MAD estimates sigma for Gaussian data; the multiplier in the
/// config is therefore in "robust standard deviations".
constexpr double kMadToSigma = 1.4826;

struct robust_aggregate {
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t rejected = 0;
};

robust_aggregate aggregate(const std::vector<double>& values,
                           double mad_multiplier, bool robust) {
  robust_aggregate out;
  std::vector<double> kept;
  if (robust && mad_multiplier > 0.0 && values.size() >= 4) {
    const double med = stats::median(values);
    std::vector<double> dev;
    dev.reserve(values.size());
    for (double v : values) dev.push_back(std::abs(v - med));
    const double mad = stats::median(dev);
    if (mad > 0.0) {
      const double cut = mad_multiplier * kMadToSigma * mad;
      for (double v : values) {
        if (std::abs(v - med) <= cut) kept.push_back(v);
      }
    }
  }
  if (kept.empty()) kept = values;
  out.rejected = values.size() - kept.size();
  stats::running_stats acc;
  for (double v : kept) acc.push(v);
  out.mean = acc.mean();
  // Population stddev: exactly 0 for a single surviving repetition.
  out.stddev = acc.stddev();
  return out;
}

}  // namespace

resilient_monitor::resilient_monitor(monitor_ptr inner, resilience_config cfg)
    : inner_(std::move(inner)), cfg_(cfg) {
  ADVH_CHECK(inner_ != nullptr);
  ADVH_CHECK_MSG(cfg_.retry.max_attempts >= 1 &&
                     cfg_.retry.max_attempts <= attempt_stride,
                 "retry.max_attempts must be in [1, attempt_stride]");
  reader_ = dynamic_cast<raw_reader*>(inner_.get());
  if (reader_ == nullptr) {
    throw unsupported_error("resilient_monitor requires a raw_reader inner "
                            "backend (got " +
                            inner_->backend_name() + ")");
  }
}

std::vector<hpc_event> resilient_monitor::lost_events() const {
  std::lock_guard<std::mutex> lock(lost_mutex_);
  return {lost_.begin(), lost_.end()};
}

std::vector<hpc_event> resilient_monitor::surviving(
    std::span<const hpc_event> requested) const {
  std::lock_guard<std::mutex> lock(lost_mutex_);
  std::vector<hpc_event> out;
  out.reserve(requested.size());
  for (hpc_event e : requested) {
    if (lost_.find(e) == lost_.end()) out.push_back(e);
  }
  return out;
}

measurement resilient_monitor::measure_sample(
    const tensor& x, std::span<const hpc_event> events, std::size_t repeats,
    std::uint64_t sample_index, const measure_budget& budget) const {
  const std::size_t n_events = events.size();
  const std::uint64_t base_stream = sample_index * attempt_stride;

  measurement out;
  out.mean_counts.assign(n_events, 0.0);
  out.stddev_counts.assign(n_events, 0.0);
  out.q.available.assign(n_events, 1);
  out.q.repetitions = static_cast<std::uint32_t>(repeats);

  std::vector<std::vector<double>> good(n_events);
  for (auto& g : good) g.reserve(repeats);
  std::vector<std::uint8_t> lost(n_events, 0);

  const auto absorb = [&](const reading_block& block) {
    for (std::size_t r = 0; r < block.repetitions; ++r) {
      for (std::size_t e = 0; e < n_events; ++e) {
        switch (block.status_at(r, e)) {
          case reading_block::read_status::ok:
            if (good[e].size() < repeats) good[e].push_back(block.value_at(r, e));
            break;
          case reading_block::read_status::transient_failure:
            break;
          case reading_block::read_status::event_lost:
            lost[e] = 1;
            break;
        }
      }
    }
    if (!block.multiplexed.empty()) {
      if (out.q.multiplexed.empty()) out.q.multiplexed.assign(n_events, 0);
      for (std::size_t e = 0; e < n_events; ++e) {
        out.q.multiplexed[e] |= block.multiplexed[e];
      }
    }
  };

  const reading_block first =
      reader_->read_repetitions(x, events, repeats, base_stream);
  // The prediction comes from the inference itself, not the counters, so
  // it survives any counter fault.
  out.predicted = first.predicted;
  absorb(first);

  // Budget-capped retry rounds: the rounds that do run are identical to
  // the unbudgeted schedule (same stream indices), the budget merely
  // truncates it — so budgeted measurements stay thread-invariant.
  const std::size_t max_attempts =
      budget.max_retry_rounds == measure_budget::unlimited
          ? cfg_.retry.max_attempts
          : std::min(cfg_.retry.max_attempts, budget.max_retry_rounds + 1);
  for (std::size_t attempt = 1; attempt < max_attempts; ++attempt) {
    std::size_t needed = 0;
    for (std::size_t e = 0; e < n_events; ++e) {
      if (lost[e]) continue;
      needed = std::max(needed, repeats - good[e].size());
    }
    if (needed == 0) break;
    if (budget.cancel != nullptr) {
      // A cancelled token stops retrying outright; otherwise wait out the
      // backoff on the token so a drain can cut the sleep short.
      const auto delay = budget.allow_backoff ? cfg_.retry.delay(attempt - 1)
                                              : std::chrono::milliseconds{0};
      if (budget.cancel->wait_for(delay)) break;
    } else if (budget.allow_backoff) {
      std::this_thread::sleep_for(cfg_.retry.delay(attempt - 1));
    }
    ++out.q.retries;
    absorb(reader_->read_repetitions(x, events, needed,
                                     base_stream + attempt));
  }

  const std::size_t min_reps = std::max<std::size_t>(cfg_.min_repetitions, 1);
  for (std::size_t e = 0; e < n_events; ++e) {
    if (!lost[e]) {
      out.q.failed_repetitions +=
          static_cast<std::uint32_t>(repeats - good[e].size());
    }
    if (lost[e] || good[e].size() < min_reps) {
      out.q.available[e] = 0;
      continue;
    }
    const robust_aggregate agg =
        aggregate(good[e], cfg_.mad_multiplier, cfg_.robust_aggregation);
    out.mean_counts[e] = agg.mean;
    out.stddev_counts[e] = agg.stddev;
    out.q.outliers_rejected += static_cast<std::uint32_t>(agg.rejected);
  }

  bool any_lost = false;
  for (const std::uint8_t l : lost) any_lost = any_lost || l != 0;
  if (any_lost) {
    std::lock_guard<std::mutex> lock(lost_mutex_);
    for (std::size_t e = 0; e < n_events; ++e) {
      if (lost[e]) lost_.insert(events[e]);
    }
  }
  return out;
}

measurement resilient_monitor::do_measure(const tensor& x,
                                          std::span<const hpc_event> events,
                                          std::size_t repeats) {
  return measure_sample(x, events, repeats, next_sample_++, measure_budget{});
}

measurement resilient_monitor::do_measure_budgeted(
    const tensor& x, std::span<const hpc_event> events, std::size_t repeats,
    const measure_budget& budget) {
  return measure_sample(x, events, repeats, next_sample_++, budget);
}

std::vector<measurement> resilient_monitor::do_measure_batch(
    std::span<const tensor> inputs, std::span<const hpc_event> events,
    std::size_t repeats, std::size_t threads) {
  return do_measure_batch_budgeted(inputs, events, repeats, threads,
                                   measure_budget{});
}

std::vector<measurement> resilient_monitor::do_measure_batch_budgeted(
    std::span<const tensor> inputs, std::span<const hpc_event> events,
    std::size_t repeats, std::size_t threads, const measure_budget& budget) {
  std::vector<measurement> out(inputs.size());
  const std::uint64_t base = next_sample_;
  next_sample_ += inputs.size();
  parallel::parallel_for(inputs.size(), threads,
                         [&](std::size_t i, std::size_t /*worker*/) {
                           out[i] = measure_sample(inputs[i], events, repeats,
                                                   base + i, budget);
                         });
  return out;
}

}  // namespace advh::hpc
