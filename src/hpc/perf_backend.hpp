// Native Linux perf_event_open backend.
//
// Counts the nine supported events around real inference executions of the
// wrapped model — what the paper runs on an Intel i7-9700. Container and
// CI environments usually deny perf_event_open (perf_event_paranoid or
// seccomp); construction then throws backend_unavailable and callers fall
// back to the simulator (see make_monitor in hpc/factory.hpp).
#pragma once

#include "hpc/monitor.hpp"
#include "nn/model.hpp"

namespace advh::hpc {

/// Returns true if a basic hardware counter can be opened on this system.
bool perf_events_available() noexcept;

class perf_backend final : public hpc_monitor {
 public:
  /// Throws backend_unavailable if perf_event_open is not permitted.
  explicit perf_backend(nn::model& m);
  ~perf_backend() override;

  measurement measure(const tensor& x, std::span<const hpc_event> events,
                      std::size_t repeats) override;

  std::string backend_name() const override { return "perf_event"; }

 private:
  /// Opens a counter fd for one event; returns -1 on failure.
  static int open_event(hpc_event e) noexcept;

  nn::model& model_;
};

}  // namespace advh::hpc
