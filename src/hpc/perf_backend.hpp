// Native Linux perf_event_open backend.
//
// Counts the nine supported events around real inference executions of the
// wrapped model — what the paper runs on an Intel i7-9700. Container and
// CI environments usually deny perf_event_open (perf_event_paranoid or
// seccomp); construction then throws backend_unavailable and callers fall
// back to the simulator (see make_monitor in hpc/factory.hpp).
//
// Hardened against real-counter flakiness: reads retry on EINTR and
// reassemble short reads; counters are opened with
// time_enabled/time_running so multiplexed events are scaled to their
// full-time estimate (logged once per event); an event that cannot be
// opened or read is reported unavailable in measurement::quality instead
// of aborting the measurement, so the resilient layer can degrade
// gracefully.
#pragma once

#include <array>

#include "hpc/monitor.hpp"
#include "nn/model.hpp"

namespace advh::hpc {

/// Returns true if a basic hardware counter can be opened on this system.
bool perf_events_available() noexcept;

class perf_backend final : public hpc_monitor, public raw_reader {
 public:
  /// Throws backend_unavailable if perf_event_open is not permitted.
  explicit perf_backend(nn::model& m);
  ~perf_backend() override;

  std::string backend_name() const override { return "perf_event"; }

  /// Raw per-repetition readings; `stream` is ignored (real hardware has
  /// no replayable randomness). Serial use only — one physical PMU.
  reading_block read_repetitions(const tensor& x,
                                 std::span<const hpc_event> events,
                                 std::size_t repeats,
                                 std::uint64_t stream) override;

 protected:
  measurement do_measure(const tensor& x, std::span<const hpc_event> events,
                         std::size_t repeats) override;

 private:
  /// Opens a counter fd for one event; returns -1 on failure.
  static int open_event(hpc_event e) noexcept;

  nn::model& model_;
  /// Events already warned about (multiplex scaling / open failure), so
  /// each condition logs once per event per backend instance.
  std::array<bool, hpc_event_count> scale_warned_{};
  std::array<bool, hpc_event_count> open_warned_{};
};

}  // namespace advh::hpc
