// Measurement-noise model for the simulator backend.
//
// Real HPC readings vary between repetitions because other processes share
// the core and the counters (the reason the paper repeats each measurement
// R = 10 times and averages). Each repetition perturbs the true count with
// a multiplicative Gaussian term (timing/interleaving jitter proportional
// to the count) plus an additive Poisson term (background-process events
// attributed to the monitored task).
#pragma once

#include "common/rng.hpp"
#include "hpc/events.hpp"

namespace advh::hpc {

struct noise_spec {
  double rel_sigma = 0.01;       ///< multiplicative jitter std-dev
  double background_mean = 0.0;  ///< Poisson mean of additive events
};

class noise_model {
 public:
  /// Default per-event noise calibrated so relative jitter is small for
  /// high-rate events (instructions) and larger for rare events (misses),
  /// matching typical perf behaviour.
  noise_model();

  noise_spec& spec(hpc_event e);
  const noise_spec& spec(hpc_event e) const;

  /// One noisy observation of a counter with the given true value.
  double sample(hpc_event e, double true_count, rng& gen) const;

  /// A noise model with all terms zeroed (deterministic measurements).
  static noise_model none();

 private:
  std::vector<noise_spec> specs_;  // indexed by static_cast<size_t>(event)
};

}  // namespace advh::hpc
