#include "hpc/perf_backend.hpp"

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace advh::hpc {

namespace {

long perf_event_open_syscall(perf_event_attr* attr, pid_t pid, int cpu,
                             int group_fd, unsigned long flags) noexcept {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

bool event_ids(hpc_event e, std::uint32_t& type, std::uint64_t& config) {
  constexpr auto hw_cache = [](std::uint64_t id, std::uint64_t op,
                               std::uint64_t result) {
    return id | (op << 8) | (result << 16);
  };
  switch (e) {
    case hpc_event::instructions:
      type = PERF_TYPE_HARDWARE;
      config = PERF_COUNT_HW_INSTRUCTIONS;
      return true;
    case hpc_event::branches:
      type = PERF_TYPE_HARDWARE;
      config = PERF_COUNT_HW_BRANCH_INSTRUCTIONS;
      return true;
    case hpc_event::branch_misses:
      type = PERF_TYPE_HARDWARE;
      config = PERF_COUNT_HW_BRANCH_MISSES;
      return true;
    case hpc_event::cache_references:
      type = PERF_TYPE_HARDWARE;
      config = PERF_COUNT_HW_CACHE_REFERENCES;
      return true;
    case hpc_event::cache_misses:
      type = PERF_TYPE_HARDWARE;
      config = PERF_COUNT_HW_CACHE_MISSES;
      return true;
    case hpc_event::l1d_load_misses:
      type = PERF_TYPE_HW_CACHE;
      config = hw_cache(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                        PERF_COUNT_HW_CACHE_RESULT_MISS);
      return true;
    case hpc_event::l1i_load_misses:
      type = PERF_TYPE_HW_CACHE;
      config = hw_cache(PERF_COUNT_HW_CACHE_L1I, PERF_COUNT_HW_CACHE_OP_READ,
                        PERF_COUNT_HW_CACHE_RESULT_MISS);
      return true;
    case hpc_event::llc_load_misses:
      type = PERF_TYPE_HW_CACHE;
      config = hw_cache(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                        PERF_COUNT_HW_CACHE_RESULT_MISS);
      return true;
    case hpc_event::llc_store_misses:
      type = PERF_TYPE_HW_CACHE;
      config = hw_cache(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_WRITE,
                        PERF_COUNT_HW_CACHE_RESULT_MISS);
      return true;
  }
  return false;
}

class scoped_fd {
 public:
  explicit scoped_fd(int fd) noexcept : fd_(fd) {}
  ~scoped_fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  scoped_fd(const scoped_fd&) = delete;
  scoped_fd& operator=(const scoped_fd&) = delete;
  scoped_fd(scoped_fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }

 private:
  int fd_;
};

int open_event_fd(hpc_event e) noexcept {
  std::uint32_t type = 0;
  std::uint64_t config = 0;
  if (!event_ids(e, type, config)) return -1;

  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(
      perf_event_open_syscall(&attr, 0 /* self */, -1, -1, 0));
}

}  // namespace

int perf_backend::open_event(hpc_event e) noexcept { return open_event_fd(e); }

bool perf_events_available() noexcept {
  const int fd = open_event_fd(hpc_event::instructions);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

perf_backend::perf_backend(nn::model& m) : model_(m) {
  if (!perf_events_available()) {
    throw backend_unavailable(
        std::string("perf_event_open denied (") + std::strerror(errno) +
        "); lower /proc/sys/kernel/perf_event_paranoid or use the simulator "
        "backend");
  }
}

perf_backend::~perf_backend() = default;

measurement perf_backend::measure(const tensor& x,
                                  std::span<const hpc_event> events,
                                  std::size_t repeats) {
  ADVH_CHECK(repeats > 0);
  measurement out;
  out.mean_counts.assign(events.size(), 0.0);
  out.stddev_counts.assign(events.size(), 0.0);

  std::vector<stats::running_stats> acc(events.size());
  for (std::size_t r = 0; r < repeats; ++r) {
    // One fd per event, counting simultaneously around a real inference.
    std::vector<scoped_fd> fds;
    fds.reserve(events.size());
    for (hpc_event e : events) {
      fds.emplace_back(open_event(e));
      ADVH_CHECK_MSG(fds.back().valid(),
                     "failed to open counter for " + to_string(e));
      ioctl(fds.back().get(), PERF_EVENT_IOC_RESET, 0);
    }
    for (auto& fd : fds) ioctl(fd.get(), PERF_EVENT_IOC_ENABLE, 0);

    out.predicted = model_.predict_one(x);

    for (std::size_t e = 0; e < events.size(); ++e) {
      ioctl(fds[e].get(), PERF_EVENT_IOC_DISABLE, 0);
      std::uint64_t value = 0;
      const ssize_t got = ::read(fds[e].get(), &value, sizeof(value));
      ADVH_CHECK_MSG(got == static_cast<ssize_t>(sizeof(value)),
                     "short read from perf counter");
      acc[e].push(static_cast<double>(value));
    }
  }

  for (std::size_t e = 0; e < events.size(); ++e) {
    out.mean_counts[e] = acc[e].mean();
    out.stddev_counts[e] = acc[e].stddev();
  }
  return out;
}

}  // namespace advh::hpc
