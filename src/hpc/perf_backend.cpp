#include "hpc/perf_backend.hpp"

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"

namespace advh::hpc {

namespace {

long perf_event_open_syscall(perf_event_attr* attr, pid_t pid, int cpu,
                             int group_fd, unsigned long flags) noexcept {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

bool event_ids(hpc_event e, std::uint32_t& type, std::uint64_t& config) {
  constexpr auto hw_cache = [](std::uint64_t id, std::uint64_t op,
                               std::uint64_t result) {
    return id | (op << 8) | (result << 16);
  };
  switch (e) {
    case hpc_event::instructions:
      type = PERF_TYPE_HARDWARE;
      config = PERF_COUNT_HW_INSTRUCTIONS;
      return true;
    case hpc_event::branches:
      type = PERF_TYPE_HARDWARE;
      config = PERF_COUNT_HW_BRANCH_INSTRUCTIONS;
      return true;
    case hpc_event::branch_misses:
      type = PERF_TYPE_HARDWARE;
      config = PERF_COUNT_HW_BRANCH_MISSES;
      return true;
    case hpc_event::cache_references:
      type = PERF_TYPE_HARDWARE;
      config = PERF_COUNT_HW_CACHE_REFERENCES;
      return true;
    case hpc_event::cache_misses:
      type = PERF_TYPE_HARDWARE;
      config = PERF_COUNT_HW_CACHE_MISSES;
      return true;
    case hpc_event::l1d_load_misses:
      type = PERF_TYPE_HW_CACHE;
      config = hw_cache(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                        PERF_COUNT_HW_CACHE_RESULT_MISS);
      return true;
    case hpc_event::l1i_load_misses:
      type = PERF_TYPE_HW_CACHE;
      config = hw_cache(PERF_COUNT_HW_CACHE_L1I, PERF_COUNT_HW_CACHE_OP_READ,
                        PERF_COUNT_HW_CACHE_RESULT_MISS);
      return true;
    case hpc_event::llc_load_misses:
      type = PERF_TYPE_HW_CACHE;
      config = hw_cache(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                        PERF_COUNT_HW_CACHE_RESULT_MISS);
      return true;
    case hpc_event::llc_store_misses:
      type = PERF_TYPE_HW_CACHE;
      config = hw_cache(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_WRITE,
                        PERF_COUNT_HW_CACHE_RESULT_MISS);
      return true;
  }
  return false;
}

class scoped_fd {
 public:
  explicit scoped_fd(int fd) noexcept : fd_(fd) {}
  ~scoped_fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  scoped_fd(const scoped_fd&) = delete;
  scoped_fd& operator=(const scoped_fd&) = delete;
  scoped_fd(scoped_fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }

 private:
  int fd_;
};

int open_event_fd(hpc_event e) noexcept {
  std::uint32_t type = 0;
  std::uint64_t config = 0;
  if (!event_ids(e, type, config)) return -1;

  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // Expose PMU scheduling time so multiplexed counts can be scaled.
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(
      perf_event_open_syscall(&attr, 0 /* self */, -1, -1, 0));
}

/// What the kernel returns for the read_format above.
struct counter_reading {
  std::uint64_t value = 0;
  std::uint64_t time_enabled = 0;
  std::uint64_t time_running = 0;
};

/// Reads the full counter struct, retrying on EINTR and reassembling
/// short reads. Returns false when the read failed outright.
bool robust_read(int fd, counter_reading& out) noexcept {
  auto* bytes = reinterpret_cast<char*>(&out);
  std::size_t have = 0;
  while (have < sizeof(out)) {
    const ssize_t got = ::read(fd, bytes + have, sizeof(out) - have);
    if (got > 0) {
      have += static_cast<std::size_t>(got);
      continue;
    }
    if (got < 0 && errno == EINTR) continue;  // interrupted: retry the read
    return false;  // EOF or hard error: the caller treats this repetition
                   // as a transient failure
  }
  return true;
}

}  // namespace

int perf_backend::open_event(hpc_event e) noexcept { return open_event_fd(e); }

bool perf_events_available() noexcept {
  const int fd = open_event_fd(hpc_event::instructions);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

perf_backend::perf_backend(nn::model& m) : model_(m) {
  if (!perf_events_available()) {
    throw backend_unavailable(
        std::string("perf_event_open denied (") + std::strerror(errno) +
        "); lower /proc/sys/kernel/perf_event_paranoid or use the simulator "
        "backend");
  }
}

perf_backend::~perf_backend() = default;

reading_block perf_backend::read_repetitions(const tensor& x,
                                             std::span<const hpc_event> events,
                                             std::size_t repeats,
                                             std::uint64_t /*stream*/) {
  reading_block block;
  block.repetitions = repeats;
  block.num_events = events.size();
  block.values.assign(repeats * events.size(), 0.0);
  block.status.assign(repeats * events.size(), reading_block::read_status::ok);
  block.multiplexed.assign(events.size(), 0);

  for (std::size_t r = 0; r < repeats; ++r) {
    // One fd per event, counting simultaneously around a real inference.
    std::vector<scoped_fd> fds;
    fds.reserve(events.size());
    for (std::size_t e = 0; e < events.size(); ++e) {
      fds.emplace_back(open_event(events[e]));
      if (!fds.back().valid()) {
        const auto idx = static_cast<std::size_t>(events[e]);
        if (!open_warned_[idx]) {
          open_warned_[idx] = true;
          log::warn("perf: cannot open counter for ", to_string(events[e]),
                    " (", std::strerror(errno), "); event reported lost");
        }
        block.status[r * events.size() + e] =
            reading_block::read_status::event_lost;
        continue;
      }
      ioctl(fds.back().get(), PERF_EVENT_IOC_RESET, 0);
    }
    for (auto& fd : fds) {
      if (fd.valid()) ioctl(fd.get(), PERF_EVENT_IOC_ENABLE, 0);
    }

    block.predicted = model_.predict_one(x);

    for (std::size_t e = 0; e < events.size(); ++e) {
      const std::size_t idx = r * events.size() + e;
      if (block.status[idx] == reading_block::read_status::event_lost) {
        continue;
      }
      ioctl(fds[e].get(), PERF_EVENT_IOC_DISABLE, 0);
      counter_reading reading;
      if (!robust_read(fds[e].get(), reading) || reading.time_running == 0) {
        // Hard read error, or the event never got PMU time this run.
        block.status[idx] = reading_block::read_status::transient_failure;
        continue;
      }
      double value = static_cast<double>(reading.value);
      if (reading.time_running < reading.time_enabled) {
        // The PMU multiplexed this event: scale the observed count to the
        // full enabled window, the standard perf estimate.
        value *= static_cast<double>(reading.time_enabled) /
                 static_cast<double>(reading.time_running);
        block.multiplexed[e] = 1;
        const auto ev_idx = static_cast<std::size_t>(events[e]);
        if (!scale_warned_[ev_idx]) {
          scale_warned_[ev_idx] = true;
          log::warn("perf: ", to_string(events[e]),
                    " is multiplexed; counts scaled by "
                    "time_enabled/time_running");
        }
      }
      block.values[idx] = value;
    }
  }
  return block;
}

measurement perf_backend::do_measure(const tensor& x,
                                     std::span<const hpc_event> events,
                                     std::size_t repeats) {
  const reading_block block = read_repetitions(x, events, repeats, 0);

  measurement out;
  out.predicted = block.predicted;
  out.mean_counts.assign(events.size(), 0.0);
  out.stddev_counts.assign(events.size(), 0.0);
  out.q.available.assign(events.size(), 1);
  out.q.multiplexed = block.multiplexed;
  out.q.repetitions = static_cast<std::uint32_t>(repeats);

  for (std::size_t e = 0; e < events.size(); ++e) {
    stats::running_stats acc;
    bool lost = false;
    for (std::size_t r = 0; r < repeats; ++r) {
      switch (block.status_at(r, e)) {
        case reading_block::read_status::ok:
          acc.push(block.value_at(r, e));
          break;
        case reading_block::read_status::transient_failure:
          ++out.q.failed_repetitions;
          break;
        case reading_block::read_status::event_lost:
          lost = true;
          break;
      }
    }
    if (lost || acc.count() == 0) {
      out.q.available[e] = 0;
      continue;
    }
    out.mean_counts[e] = acc.mean();
    // Population stddev: 0 by construction at repeats == 1, never NaN.
    out.stddev_counts[e] = acc.stddev();
  }
  return out;
}

}  // namespace advh::hpc
