#include "hpc/monitor.hpp"

#include <stdexcept>

namespace advh::hpc {

measurement hpc_monitor::measure(const tensor& x,
                                 std::span<const hpc_event> events,
                                 std::size_t repeats) {
  if (repeats == 0) {
    throw std::invalid_argument(
        "hpc_monitor::measure: repeats must be positive");
  }
  return do_measure(x, events, repeats);
}

std::vector<measurement> hpc_monitor::measure_batch(
    std::span<const tensor> inputs, std::span<const hpc_event> events,
    std::size_t repeats, std::size_t threads) {
  if (repeats == 0) {
    throw std::invalid_argument(
        "hpc_monitor::measure_batch: repeats must be positive");
  }
  return do_measure_batch(inputs, events, repeats, threads);
}

std::vector<measurement> hpc_monitor::do_measure_batch(
    std::span<const tensor> inputs, std::span<const hpc_event> events,
    std::size_t repeats, std::size_t threads) {
  (void)threads;  // one physical PMU: batch order is the measurement order
  std::vector<measurement> out;
  out.reserve(inputs.size());
  for (const tensor& x : inputs) out.push_back(do_measure(x, events, repeats));
  return out;
}

}  // namespace advh::hpc
