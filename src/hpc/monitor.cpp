#include "hpc/monitor.hpp"

#include <stdexcept>

#include "common/stats.hpp"

namespace advh::hpc {

measurement aggregate_block_naive(const reading_block& block,
                                  std::size_t repeats) {
  measurement out;
  out.predicted = block.predicted;
  out.mean_counts.assign(block.num_events, 0.0);
  out.stddev_counts.assign(block.num_events, 0.0);
  out.q.available.assign(block.num_events, 1);
  out.q.multiplexed = block.multiplexed;
  out.q.repetitions = static_cast<std::uint32_t>(repeats);

  for (std::size_t e = 0; e < block.num_events; ++e) {
    stats::running_stats acc;
    bool lost = false;
    for (std::size_t r = 0; r < block.repetitions; ++r) {
      switch (block.status_at(r, e)) {
        case reading_block::read_status::ok:
          acc.push(block.value_at(r, e));
          break;
        case reading_block::read_status::transient_failure:
          ++out.q.failed_repetitions;
          break;
        case reading_block::read_status::event_lost:
          lost = true;
          break;
      }
    }
    if (lost || acc.count() == 0) {
      out.q.available[e] = 0;
      continue;
    }
    out.mean_counts[e] = acc.mean();
    out.stddev_counts[e] = acc.stddev();
  }
  return out;
}

measurement hpc_monitor::measure(const tensor& x,
                                 std::span<const hpc_event> events,
                                 std::size_t repeats) {
  if (repeats == 0) {
    throw std::invalid_argument(
        "hpc_monitor::measure: repeats must be positive");
  }
  return do_measure(x, events, repeats);
}

measurement hpc_monitor::measure(const tensor& x,
                                 std::span<const hpc_event> events,
                                 std::size_t repeats,
                                 const measure_budget& budget) {
  if (repeats == 0) {
    throw std::invalid_argument(
        "hpc_monitor::measure: repeats must be positive");
  }
  return do_measure_budgeted(x, events, repeats, budget);
}

std::vector<measurement> hpc_monitor::measure_batch(
    std::span<const tensor> inputs, std::span<const hpc_event> events,
    std::size_t repeats, std::size_t threads) {
  if (repeats == 0) {
    throw std::invalid_argument(
        "hpc_monitor::measure_batch: repeats must be positive");
  }
  return do_measure_batch(inputs, events, repeats, threads);
}

std::vector<measurement> hpc_monitor::measure_batch(
    std::span<const tensor> inputs, std::span<const hpc_event> events,
    std::size_t repeats, std::size_t threads, const measure_budget& budget) {
  if (repeats == 0) {
    throw std::invalid_argument(
        "hpc_monitor::measure_batch: repeats must be positive");
  }
  return do_measure_batch_budgeted(inputs, events, repeats, threads, budget);
}

measurement hpc_monitor::do_measure_budgeted(const tensor& x,
                                             std::span<const hpc_event> events,
                                             std::size_t repeats,
                                             const measure_budget& budget) {
  (void)budget;  // no retry loop below this layer: nothing to cap
  return do_measure(x, events, repeats);
}

std::vector<measurement> hpc_monitor::do_measure_batch_budgeted(
    std::span<const tensor> inputs, std::span<const hpc_event> events,
    std::size_t repeats, std::size_t threads, const measure_budget& budget) {
  (void)budget;
  return do_measure_batch(inputs, events, repeats, threads);
}

std::vector<measurement> hpc_monitor::do_measure_batch(
    std::span<const tensor> inputs, std::span<const hpc_event> events,
    std::size_t repeats, std::size_t threads) {
  (void)threads;  // one physical PMU: batch order is the measurement order
  std::vector<measurement> out;
  out.reserve(inputs.size());
  for (const tensor& x : inputs) out.push_back(do_measure(x, events, repeats));
  return out;
}

}  // namespace advh::hpc
