#include "hpc/monitor.hpp"

namespace advh::hpc {

std::vector<measurement> hpc_monitor::measure_batch(
    std::span<const tensor> inputs, std::span<const hpc_event> events,
    std::size_t repeats, std::size_t threads) {
  (void)threads;  // one physical PMU: batch order is the measurement order
  std::vector<measurement> out;
  out.reserve(inputs.size());
  for (const tensor& x : inputs) out.push_back(measure(x, events, repeats));
  return out;
}

}  // namespace advh::hpc
