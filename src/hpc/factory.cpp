#include "hpc/factory.hpp"

#include <cstdlib>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "hpc/perf_backend.hpp"

namespace advh::hpc {

std::optional<fault_config> fault_config_from_env() {
  const char* env = std::getenv("ADVH_FAULT_RATE");
  if (env == nullptr) return std::nullopt;
  const double rate = std::atof(env);
  if (rate <= 0.0) return std::nullopt;
  fault_config cfg;
  cfg.read_failure_rate = rate;
  cfg.spike_rate = rate / 2.0;
  cfg.stuck_rate = rate / 4.0;
  // Rare, short hangs: enough to exercise the timed-out-read path without
  // slowing the suite down.
  cfg.hang_rate = rate / 50.0;
  cfg.hang_ms = 1;
  return cfg;
}

monitor_ptr make_monitor(nn::model& m, const monitor_options& opts) {
  monitor_ptr base;
  switch (opts.kind) {
    case backend_kind::perf:
      base = std::make_unique<perf_backend>(m);
      break;
    case backend_kind::simulator:
      base = std::make_unique<sim_backend>(m, opts.sim_cfg, noise_model{},
                                           opts.noise_seed);
      break;
    case backend_kind::auto_detect:
      if (perf_events_available()) {
        log::info("HPC monitor: native perf_event backend");
        base = std::make_unique<perf_backend>(m);
      } else {
        log::info("HPC monitor: perf_event unavailable, using simulator");
        base = std::make_unique<sim_backend>(m, opts.sim_cfg, noise_model{},
                                             opts.noise_seed);
      }
      break;
  }
  if (base == nullptr) throw invariant_error("unknown backend kind");

  if (opts.faults.has_value()) {
    log::info("HPC monitor: injecting faults (read failure rate ",
              opts.faults->read_failure_rate, ")");
    base = std::make_unique<fault_backend>(std::move(base), *opts.faults);
  }
  if (opts.resilience.has_value()) {
    base = std::make_unique<resilient_monitor>(std::move(base),
                                               *opts.resilience);
  }
  return base;
}

monitor_ptr make_monitor(nn::model& m, backend_kind kind,
                         const uarch::trace_gen_config& sim_cfg,
                         std::uint64_t noise_seed) {
  monitor_options opts;
  opts.kind = kind;
  opts.sim_cfg = sim_cfg;
  opts.noise_seed = noise_seed;
  // Chaos override: a fault-injected stack is only useful behind the
  // resilient layer, so the two always come together here.
  opts.faults = fault_config_from_env();
  if (opts.faults.has_value()) opts.resilience = resilience_config{};
  return make_monitor(m, opts);
}

}  // namespace advh::hpc
