#include "hpc/factory.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "hpc/perf_backend.hpp"

namespace advh::hpc {

namespace {

/// Strict environment-rate parsing shared by the chaos knobs: the whole
/// string must be a finite number in [0, max_value]. A set-but-broken
/// knob throws instead of silently disabling the chaos it was meant to
/// inject.
double env_rate(const char* name, const char* value, double max_value) {
  errno = 0;
  char* end = nullptr;
  const double rate = std::strtod(value, &end);
  if (end == value || *end != '\0' || errno == ERANGE ||
      !std::isfinite(rate) || rate < 0.0 || rate > max_value) {
    throw std::invalid_argument(std::string(name) + "=\"" + value +
                                "\": expected a number in [0, " +
                                std::to_string(max_value) + "]");
  }
  return rate;
}

}  // namespace

std::optional<fault_config> fault_config_from_env() {
  const char* env = std::getenv("ADVH_FAULT_RATE");
  if (env == nullptr) return std::nullopt;
  const double rate = env_rate("ADVH_FAULT_RATE", env, 1.0);
  if (rate == 0.0) return std::nullopt;
  fault_config cfg;
  cfg.read_failure_rate = rate;
  cfg.spike_rate = rate / 2.0;
  cfg.stuck_rate = rate / 4.0;
  // Rare, short hangs: enough to exercise the timed-out-read path without
  // slowing the suite down.
  cfg.hang_rate = rate / 50.0;
  cfg.hang_ms = 1;
  return cfg;
}

std::optional<drift_profile> drift_profile_from_env() {
  const char* env = std::getenv("ADVH_DRIFT_RATE");
  if (env == nullptr) return std::nullopt;
  const double rate = env_rate("ADVH_DRIFT_RATE", env, 99.0);
  if (rate == 0.0) return std::nullopt;
  drift_profile p;
  p.shape = drift_profile::shape_kind::step;
  p.magnitude = 1.0 + rate;
  // Active from stream 0: the whole session — template collection and
  // online scoring alike — runs on the shifted baseline, which is how a
  // redeployment onto different silicon looks. Mid-session onsets are the
  // drift bench's job (it constructs explicit profiles).
  p.onset_stream = 0;
  return p;
}

monitor_ptr make_monitor(nn::model& m, const monitor_options& opts) {
  monitor_ptr base;
  switch (opts.kind) {
    case backend_kind::perf:
      base = std::make_unique<perf_backend>(m);
      break;
    case backend_kind::simulator:
      base = std::make_unique<sim_backend>(m, opts.sim_cfg, noise_model{},
                                           opts.noise_seed);
      break;
    case backend_kind::auto_detect:
      if (perf_events_available()) {
        log::info("HPC monitor: native perf_event backend");
        base = std::make_unique<perf_backend>(m);
      } else {
        log::info("HPC monitor: perf_event unavailable, using simulator");
        base = std::make_unique<sim_backend>(m, opts.sim_cfg, noise_model{},
                                             opts.noise_seed);
      }
      break;
  }
  if (base == nullptr) throw invariant_error("unknown backend kind");

  if (opts.drift.has_value()) {
    log::info("HPC monitor: injecting baseline drift (magnitude ",
              opts.drift->magnitude, ")");
    base = std::make_unique<drift_backend>(std::move(base), *opts.drift);
  }
  if (opts.faults.has_value()) {
    log::info("HPC monitor: injecting faults (read failure rate ",
              opts.faults->read_failure_rate, ")");
    base = std::make_unique<fault_backend>(std::move(base), *opts.faults);
  }
  if (opts.resilience.has_value()) {
    base = std::make_unique<resilient_monitor>(std::move(base),
                                               *opts.resilience);
  }
  return base;
}

monitor_ptr make_monitor(nn::model& m, backend_kind kind,
                         const uarch::trace_gen_config& sim_cfg,
                         std::uint64_t noise_seed) {
  monitor_options opts;
  opts.kind = kind;
  opts.sim_cfg = sim_cfg;
  opts.noise_seed = noise_seed;
  // Chaos overrides: an injected (drifted or faulty) stack is only useful
  // behind the resilient layer, so it always comes along here.
  opts.drift = drift_profile_from_env();
  opts.faults = fault_config_from_env();
  if (opts.drift.has_value() || opts.faults.has_value()) {
    opts.resilience = resilience_config{};
  }
  return make_monitor(m, opts);
}

}  // namespace advh::hpc
