#include "hpc/factory.hpp"

#include "common/error.hpp"
#include "common/logging.hpp"
#include "hpc/perf_backend.hpp"

namespace advh::hpc {

monitor_ptr make_monitor(nn::model& m, backend_kind kind,
                         const uarch::trace_gen_config& sim_cfg,
                         std::uint64_t noise_seed) {
  switch (kind) {
    case backend_kind::perf:
      return std::make_unique<perf_backend>(m);
    case backend_kind::simulator:
      return std::make_unique<sim_backend>(m, sim_cfg, noise_model{},
                                           noise_seed);
    case backend_kind::auto_detect:
      if (perf_events_available()) {
        log::info("HPC monitor: native perf_event backend");
        return std::make_unique<perf_backend>(m);
      }
      log::info("HPC monitor: perf_event unavailable, using simulator");
      return std::make_unique<sim_backend>(m, sim_cfg, noise_model{},
                                           noise_seed);
  }
  throw invariant_error("unknown backend kind");
}

}  // namespace advh::hpc
