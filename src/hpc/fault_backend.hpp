// Deterministic fault-injecting monitor decorator.
//
// Wraps any raw_reader backend and corrupts its repetition readings with
// the failure modes real counters exhibit in deployment: transient read
// failures, co-tenant value spikes, stuck-at (stale) reads, hung reads
// that the caller's watchdog times out, and per-event permanent loss
// (an event vanishing mid-session, e.g. the PMU being claimed by another
// agent). Every fault decision is a pure function of (fault seed, stream
// index) via rng::stream, so a fault storm replays bit-for-bit at any
// thread count — which is what makes the resilience tests and the
// robustness bench reproducible.
//
// Used directly as an hpc_monitor it aggregates naively (failed
// repetitions dropped, spikes trusted), showing what unprotected
// measurement feeds the detector; wrap it in a resilient_monitor for the
// protected path.
#pragma once

#include <array>
#include <cstdint>

#include "hpc/monitor.hpp"

namespace advh::hpc {

struct fault_config {
  /// Per-repetition, per-event probability of a transient read failure.
  double read_failure_rate = 0.0;
  /// Per-repetition, per-event probability of a co-tenant value spike.
  double spike_rate = 0.0;
  /// Multiplier applied to a spiked reading.
  double spike_magnitude = 8.0;
  /// Per-repetition, per-event probability the read returns the previous
  /// repetition's (stale) value instead of a fresh one.
  double stuck_rate = 0.0;
  /// Per-read-call probability the whole read hangs; the injected stall
  /// lasts hang_ms and every repetition in the block then fails as timed
  /// out.
  double hang_rate = 0.0;
  std::uint32_t hang_ms = 1;
  /// Per-stream-unit hazard of each event dying permanently: event e is
  /// lost for every stream index >= a geometric draw with this success
  /// probability (0 disables loss). Loss is monotone in the stream index,
  /// so it is reorder- and thread-count-invariant.
  double permanent_loss_rate = 0.0;
  /// Seed of the fault stream (independent of the measurement noise seed).
  std::uint64_t seed = 13;
};

class fault_backend final : public hpc_monitor, public raw_reader {
 public:
  /// Takes ownership of `inner`, which must implement raw_reader
  /// (unsupported_error otherwise).
  fault_backend(monitor_ptr inner, fault_config cfg);

  std::string backend_name() const override {
    return "faulty(" + inner_->backend_name() + ")";
  }

  /// Inner readings with faults injected; deterministic in `stream`.
  reading_block read_repetitions(const tensor& x,
                                 std::span<const hpc_event> events,
                                 std::size_t repeats,
                                 std::uint64_t stream) override;

  /// Stream index from which `e` is permanently lost (max uint64 = never).
  std::uint64_t loss_onset(hpc_event e) const noexcept;

  const fault_config& config() const noexcept { return cfg_; }

 protected:
  /// Naive aggregation of a faulted block: failed repetitions are dropped,
  /// spiked/stale values are trusted. Events with zero surviving
  /// repetitions report mean 0 and quality.available = 0.
  measurement do_measure(const tensor& x, std::span<const hpc_event> events,
                         std::size_t repeats) override;

 private:
  monitor_ptr inner_;
  raw_reader* reader_;  ///< inner_ viewed through its raw_reader facet
  fault_config cfg_;
  std::array<std::uint64_t, hpc_event_count> loss_onset_{};
  std::uint64_t next_stream_ = 0;
};

}  // namespace advh::hpc
