#include "hpc/trace_sketch.hpp"

#include <cmath>
#include <limits>

namespace advh::hpc {

namespace {

std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

trace_sketch sketch_measurement(const measurement& m) {
  trace_sketch s;
  s.levels.reserve(m.mean_counts.size());
  std::uint64_t sig = 0x7aceULL;
  for (std::size_t e = 0; e < m.mean_counts.size(); ++e) {
    std::int16_t level = trace_sketch::unavailable;
    if (m.q.event_available(e)) {
      const double mag = std::abs(m.mean_counts[e]);
      const double l = 4.0 * std::log2(1.0 + mag);
      // Counter means are bounded in practice; clamp defensively so a
      // pathological reading cannot overflow the level.
      const double clamped = std::min(l, 32000.0);
      level = static_cast<std::int16_t>(std::lround(clamped));
    }
    s.levels.push_back(level);
    sig = mix64(sig ^ static_cast<std::uint64_t>(
                          static_cast<std::uint16_t>(level)) ^
                (static_cast<std::uint64_t>(e) << 16));
  }
  s.signature = sig;
  return s;
}

double sketch_distance(const trace_sketch& a, const trace_sketch& b) noexcept {
  if (a.levels.size() != b.levels.size()) {
    return std::numeric_limits<double>::infinity();
  }
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t e = 0; e < a.levels.size(); ++e) {
    if (a.levels[e] == trace_sketch::unavailable ||
        b.levels[e] == trace_sketch::unavailable) {
      continue;
    }
    sum += std::abs(static_cast<double>(a.levels[e]) -
                    static_cast<double>(b.levels[e]));
    ++n;
  }
  if (n == 0) return std::numeric_limits<double>::infinity();
  return sum / static_cast<double>(n);
}

}  // namespace advh::hpc
