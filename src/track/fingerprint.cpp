#include "track/fingerprint.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace advh::track {

namespace {

/// splitmix64 finalizer: cheap, well-mixed 64-bit hash step (the same
/// mixer rng.cpp seeds xoshiro with).
std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::int64_t quantize(float v, double step) noexcept {
  return static_cast<std::int64_t>(std::llround(static_cast<double>(v) / step));
}

}  // namespace

std::size_t overlap(const fingerprint& a, const fingerprint& b) noexcept {
  std::size_t n = 0, i = 0, j = 0;
  while (i < a.hashes.size() && j < b.hashes.size()) {
    if (a.hashes[i] < b.hashes[j]) {
      ++i;
    } else if (b.hashes[j] < a.hashes[i]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

double match_fraction(const fingerprint& a, const fingerprint& b) noexcept {
  const std::size_t denom = std::min(a.hashes.size(), b.hashes.size());
  if (denom == 0) return 0.0;
  return static_cast<double>(overlap(a, b)) / static_cast<double>(denom);
}

fingerprint fingerprint_input(const tensor& x, const fingerprint_config& cfg) {
  if (cfg.window == 0 || cfg.stride == 0 || cfg.top_k == 0 ||
      !(cfg.quantize_step > 0.0)) {
    throw std::invalid_argument(
        "fingerprint_config: window, stride and top_k must be positive and "
        "quantize_step > 0");
  }
  fingerprint fp;
  const auto data = x.data();
  if (data.empty()) return fp;

  // Quantize once up front; windows then hash integer buckets only, so a
  // sub-step perturbation produces a byte-identical hash stream.
  std::vector<std::int64_t> q(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    q[i] = quantize(data[i], cfg.quantize_step);
  }

  // An input shorter than one window still fingerprints (one truncated
  // window) so tiny tensors are trackable rather than invisible.
  const std::size_t w = std::min(cfg.window, q.size());
  const std::size_t last = q.size() - w;

  // Keep the top_k smallest window hashes with a max-heap: the heap root
  // is the largest kept hash, evicted whenever a smaller one arrives.
  std::vector<std::uint64_t>& heap = fp.hashes;
  heap.reserve(cfg.top_k);
  for (std::size_t start = 0;; start += cfg.stride) {
    std::uint64_t h = cfg.salt;
    for (std::size_t i = 0; i < w; ++i) {
      h = mix64(h ^ static_cast<std::uint64_t>(q[start + i]));
    }
    if (heap.size() < cfg.top_k) {
      heap.push_back(h);
      std::push_heap(heap.begin(), heap.end());
    } else if (h < heap.front()) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = h;
      std::push_heap(heap.begin(), heap.end());
    }
    if (start >= last || last - start < cfg.stride) break;
  }
  std::sort(heap.begin(), heap.end());
  // Distinct windows can hash equal (and duplicate windows always do);
  // dedup keeps the fingerprint a set so overlap() counts set overlap.
  heap.erase(std::unique(heap.begin(), heap.end()), heap.end());
  return fp;
}

}  // namespace advh::track
