#include "track/table.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace advh::track {

namespace {

std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* to_string(escalation e) noexcept {
  switch (e) {
    case escalation::none:
      return "none";
    case escalation::elevated:
      return "elevated";
    case escalation::banned:
      return "banned";
  }
  return "?";
}

fingerprint_table::fingerprint_table(const table_config& cfg) : cfg_(cfg) {
  ADVH_CHECK_MSG(cfg_.shards >= 1, "track table needs at least one shard");
  ADVH_CHECK_MSG(cfg_.vnodes >= 1, "track table needs at least one vnode");
  ADVH_CHECK_MSG(cfg_.min_history >= 1 &&
                     cfg_.min_history <= cfg_.max_history,
                 "track min_history must lie in [1, max_history]");
  shard_budget_ = cfg_.byte_budget / cfg_.shards;
  ADVH_CHECK_MSG(shard_budget_ >= 4096,
                 "track byte budget too small for the shard count "
                 "(need >= 4 KiB per shard)");
  shards_ = std::vector<shard>(cfg_.shards);
  ring_.reserve(cfg_.shards * cfg_.vnodes);
  for (std::uint32_t sh = 0; sh < cfg_.shards; ++sh) {
    for (std::size_t v = 0; v < cfg_.vnodes; ++v) {
      const std::uint64_t point =
          mix64(cfg_.salt ^ (static_cast<std::uint64_t>(sh) << 32) ^ v);
      ring_.emplace_back(point, sh);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t fingerprint_table::shard_of(std::uint64_t client) const noexcept {
  const std::uint64_t h = mix64(cfg_.salt ^ client);
  // First ring point at or after the client's hash, wrapping at the end.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const auto& node, std::uint64_t key) { return node.first < key; });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

client_entry* fingerprint_table::find(shard& s, std::uint64_t client) {
  auto it = std::lower_bound(
      s.index.begin(), s.index.end(), client,
      [](const auto& p, std::uint64_t key) { return p.first < key; });
  if (it == s.index.end() || it->first != client) return nullptr;
  return &s.entries[it->second];
}

const client_entry* fingerprint_table::find(const shard& s,
                                            std::uint64_t client) {
  auto it = std::lower_bound(
      s.index.begin(), s.index.end(), client,
      [](const auto& p, std::uint64_t key) { return p.first < key; });
  if (it == s.index.end() || it->first != client) return nullptr;
  return &s.entries[it->second];
}

client_entry& fingerprint_table::find_or_create(shard& s,
                                                std::uint64_t client) {
  ++s.op;
  if (client_entry* e = find(s, client)) {
    e->last_touch = s.op;
    return *e;
  }
  client_entry e;
  e.client = client;
  e.last_touch = s.op;
  e.bytes = entry_bytes(e);
  s.bytes += e.bytes;
  s.entries.push_back(std::move(e));
  auto it = std::lower_bound(
      s.index.begin(), s.index.end(), client,
      [](const auto& p, std::uint64_t key) { return p.first < key; });
  s.index.insert(it, {client, s.entries.size() - 1});
  return s.entries.back();
}

std::size_t fingerprint_table::entry_bytes(const client_entry& e) noexcept {
  std::size_t b = sizeof(client_entry);
  for (const fingerprint& fp : e.history) b += sizeof(fingerprint) + fp.bytes();
  b += e.last_sketch.bytes();
  return b;
}

void fingerprint_table::reaccount(shard& s, client_entry& e,
                                  std::size_t before) noexcept {
  const std::size_t after = entry_bytes(e);
  e.bytes = after;
  s.bytes += after;
  s.bytes -= before;
}

std::size_t fingerprint_table::trim_entry(shard& s, client_entry& e,
                                          std::size_t floor) {
  const std::size_t before = e.bytes;
  while (e.history.size() > floor) {
    e.history.pop_front();
    ++s.evicted_fingerprints;
  }
  reaccount(s, e, before);
  return before - e.bytes;
}

void fingerprint_table::erase_entry(shard& s, std::uint64_t client,
                                    bool count_eviction) {
  auto it = std::lower_bound(
      s.index.begin(), s.index.end(), client,
      [](const auto& p, std::uint64_t key) { return p.first < key; });
  if (it == s.index.end() || it->first != client) return;
  const std::size_t pos = it->second;
  s.bytes -= s.entries[pos].bytes;
  s.index.erase(it);
  if (count_eviction) ++s.evicted_clients;
  const std::size_t last = s.entries.size() - 1;
  if (pos != last) {
    s.entries[pos] = std::move(s.entries[last]);
    // Re-point the moved entry's index slot.
    auto moved = std::lower_bound(
        s.index.begin(), s.index.end(), s.entries[pos].client,
        [](const auto& p, std::uint64_t key) { return p.first < key; });
    moved->second = pos;
  }
  s.entries.pop_back();
}

void fingerprint_table::enforce_budget(shard& s, std::uint64_t touched) {
  if (s.bytes <= shard_budget_) return;
  // Evict to a low-water mark so a shard sitting at its budget does not
  // rescan its whole population on every insert.
  const std::size_t low_water = shard_budget_ - shard_budget_ / 10;

  // Stage 1 — the client that just grew pays first: a client spraying
  // unique fingerprints consumes its own history, not its neighbours'.
  if (client_entry* e = find(s, touched)) {
    if (e->level != escalation::banned) {
      trim_entry(s, *e, cfg_.min_history);
    }
    if (s.bytes <= low_water) return;
  }

  // Stage 2 — trim the largest remaining histories down to the horizon,
  // in a total order (bytes desc, recency asc, client id asc) so eviction
  // replays identically.
  std::vector<std::size_t> order(s.entries.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const client_entry& x = s.entries[a];
    const client_entry& y = s.entries[b];
    if (x.bytes != y.bytes) return x.bytes > y.bytes;
    if (x.last_touch != y.last_touch) return x.last_touch < y.last_touch;
    return x.client < y.client;
  });
  for (std::size_t i : order) {
    if (s.bytes <= low_water) return;
    trim_entry(s, s.entries[i], cfg_.min_history);
  }
  if (s.bytes <= shard_budget_) return;

  // Stage 3 — every history is at the horizon and the shard still does
  // not fit: distinct active clients saturate it. Evict whole idle,
  // unescalated clients, least recently seen first. Escalated/banned
  // clients are exempt — their state is detection output, and banned
  // entries are already history-free (see tracker ban path).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> lru;  // (touch, id)
  lru.reserve(s.entries.size());
  for (const client_entry& e : s.entries) {
    if (e.level == escalation::none && e.client != touched) {
      lru.emplace_back(e.last_touch, e.client);
    }
  }
  std::sort(lru.begin(), lru.end());
  for (const auto& [touch, client] : lru) {
    if (s.bytes <= low_water) return;
    erase_entry(s, client);
  }
  // Whatever remains is escalated state plus the touched client's horizon
  // — the irreducible working set; it is bounded by construction
  // (min_history fingerprints per remaining client).
}

escalation fingerprint_table::level(std::uint64_t client) const {
  const shard& s = shards_[shard_of(client)];
  std::lock_guard<std::mutex> lock(s.mutex);
  const client_entry* e = find(s, client);
  return e == nullptr ? escalation::none : e->level;
}

std::size_t fingerprint_table::history_size(std::uint64_t client) const {
  const shard& s = shards_[shard_of(client)];
  std::lock_guard<std::mutex> lock(s.mutex);
  const client_entry* e = find(s, client);
  return e == nullptr ? 0 : e->history.size();
}

std::vector<client_record> fingerprint_table::extract_if(
    std::size_t max_clients, const std::function<bool(std::uint64_t)>& pred) {
  std::vector<client_record> out;
  for (shard& s : shards_) {
    if (out.size() >= max_clients) break;
    std::lock_guard<std::mutex> lock(s.mutex);
    std::vector<std::uint64_t> picked;
    for (const auto& [client, pos] : s.index) {
      if (out.size() + picked.size() >= max_clients) break;
      if (pred(client)) picked.push_back(client);
    }
    for (const std::uint64_t c : picked) {
      const client_entry* e = find(s, c);
      client_record r;
      r.client = e->client;
      r.level = e->level;
      r.hits = e->hits;
      r.trace_hits = e->trace_hits;
      r.queries = e->queries;
      r.matched = e->matched;
      r.decay_mark_ns = e->decay_mark_ns;
      r.history.assign(e->history.begin(), e->history.end());
      out.push_back(std::move(r));
      erase_entry(s, c, /*count_eviction=*/false);
    }
  }
  return out;
}

void fingerprint_table::restore(const client_record& rec) {
  shard& s = shards_[shard_of(rec.client)];
  std::lock_guard<std::mutex> lock(s.mutex);
  client_entry& e = find_or_create(s, rec.client);
  const std::size_t before = e.bytes;
  e.level = std::max(e.level, rec.level);
  e.hits = std::max(e.hits, rec.hits);
  e.trace_hits = std::max(e.trace_hits, rec.trace_hits);
  e.queries += rec.queries;
  e.matched += rec.matched;
  e.decay_mark_ns = std::max(e.decay_mark_ns, rec.decay_mark_ns);
  if (e.level == escalation::banned) {
    e.history.clear();  // banned entries stay history-free
  } else if (rec.history.size() > e.history.size()) {
    e.history.assign(rec.history.begin(), rec.history.end());
    while (e.history.size() > cfg_.max_history) e.history.pop_front();
  }
  reaccount(s, e, before);
  enforce_budget(s, rec.client);
}

std::size_t fingerprint_table::bytes_used() const {
  std::size_t total = 0;
  for (const shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    total += s.bytes;
  }
  return total;
}

table_stats fingerprint_table::stats() const {
  table_stats out;
  out.byte_budget = cfg_.byte_budget;
  for (const shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    out.tracked_clients += s.entries.size();
    out.bytes_used += s.bytes;
    out.evicted_fingerprints += s.evicted_fingerprints;
    out.evicted_clients += s.evicted_clients;
    for (const client_entry& e : s.entries) {
      if (e.level == escalation::elevated) ++out.elevated_clients;
      if (e.level == escalation::banned) ++out.banned_clients;
    }
  }
  return out;
}

}  // namespace advh::track
