// Sharded, memory-bounded per-client fingerprint table.
//
// The table is the storage layer of the query tracker: one entry per seen
// client, holding its recent fingerprint history, its last HPC trace
// sketch, and its escalation state. It is built for million-user scale:
//
//   * consistent hashing across shards — clients map to shards through a
//     ring of virtual nodes, so a future re-shard (fleet scale-out,
//     ROADMAP item 3) moves only the ~1/N of clients whose ring arc
//     changes owner instead of rehashing the world. Each shard has its own
//     mutex; clients on different shards never contend.
//   * a hard byte budget — partitioned evenly across shards so eviction is
//     a shard-local decision (no cross-shard coordination, no global lock).
//     The table NEVER exceeds the budget: every mutation re-accounts the
//     entry's bytes and evicts before returning.
//   * fairness under adversarial load — eviction trims the client that
//     just grew first (a client spraying unique fingerprints eats its own
//     history), then trims the largest histories down to — but never
//     below — `min_history`, the match-detection horizon. Whole-client
//     eviction (idle, unescalated clients, least recently seen first) is
//     the last resort, reached only when distinct active clients, not one
//     sprayer, saturate the shard. Escalated and banned clients are never
//     evicted: detection state must survive exactly the memory pressure an
//     attacker can generate. A banned client's history is dropped on ban —
//     the flag is the only state that still matters — so bans *shrink* the
//     table.
//
// Determinism: every mutation happens under the owning shard's lock and
// all eviction ordering is total (bytes, then recency, then client id), so
// table state is a pure function of the per-shard sequence of operations.
// The serving layer calls the table in admission order, which the driver
// controls — worker thread count never changes it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <type_traits>
#include <vector>

#include "hpc/trace_sketch.hpp"
#include "track/fingerprint.hpp"

namespace advh::track {

/// Escalation ladder of one client, monotone non-decreasing over its
/// lifetime: none -> elevated (full-fidelity measurement priority) ->
/// banned (shed at admission).
enum class escalation : std::uint8_t { none = 0, elevated = 1, banned = 2 };

const char* to_string(escalation e) noexcept;

struct client_entry {
  std::uint64_t client = 0;
  /// Recent query fingerprints, oldest first.
  std::deque<fingerprint> history;
  /// Last query's HPC trace sketch (empty until the first record_trace).
  hpc::trace_sketch last_sketch;
  /// Decayed fingerprint-match credit (the Blacklight match counter).
  double hits = 0.0;
  /// Decayed HPC-trace corroboration credit.
  double trace_hits = 0.0;
  std::uint64_t queries = 0;
  std::uint64_t matched = 0;
  /// Clock time of the last hit-credit decay (tracker-managed).
  std::int64_t decay_mark_ns = 0;
  escalation level = escalation::none;
  /// Accounted heap bytes of this entry (maintained by the table).
  std::size_t bytes = 0;
  /// Shard-local operation stamp of the last touch (LRU order).
  std::uint64_t last_touch = 0;
};

struct table_config {
  std::size_t shards = 8;
  /// Virtual ring nodes per shard (consistent-hashing granularity).
  std::size_t vnodes = 16;
  /// Hard byte budget over all shards (partitioned evenly).
  std::size_t byte_budget = std::size_t{8} << 20;
  /// Fingerprints kept per client before normal rotation.
  std::size_t max_history = 32;
  /// Match-detection horizon: eviction never trims a client below this
  /// many fingerprints. The fairness contract — one sprayer cannot push
  /// any other client below the horizon — holds whenever
  /// min_history * active_clients_per_shard fits the shard budget.
  std::size_t min_history = 8;
  std::uint64_t salt = 0xadb1ac7ULL;
};

struct table_stats {
  std::uint64_t tracked_clients = 0;
  std::uint64_t elevated_clients = 0;
  std::uint64_t banned_clients = 0;
  /// Fingerprints evicted under byte pressure (rotation past max_history
  /// is not eviction and is not counted).
  std::uint64_t evicted_fingerprints = 0;
  /// Whole clients evicted under byte pressure.
  std::uint64_t evicted_clients = 0;
  std::size_t bytes_used = 0;
  std::size_t byte_budget = 0;
};

/// Serialisable snapshot of one tracked client — the unit of
/// fingerprint-range handoff between fleet replicas. Carries everything
/// the escalation ladder needs to continue a campaign's history on a new
/// owner; the HPC trace sketch is deliberately dropped (corroboration
/// only, re-accumulates within a handful of served queries).
struct client_record {
  std::uint64_t client = 0;
  escalation level = escalation::none;
  double hits = 0.0;
  double trace_hits = 0.0;
  std::uint64_t queries = 0;
  std::uint64_t matched = 0;
  std::int64_t decay_mark_ns = 0;
  /// Recent fingerprints, oldest first (empty for banned clients).
  std::vector<fingerprint> history;
};

class fingerprint_table {
 public:
  explicit fingerprint_table(const table_config& cfg);

  fingerprint_table(const fingerprint_table&) = delete;
  fingerprint_table& operator=(const fingerprint_table&) = delete;

  /// Runs `fn(client_entry&)` for the client's entry — created on demand —
  /// under the owning shard's lock, then re-accounts the entry's bytes and
  /// enforces the shard byte budget before returning. `fn` must not keep
  /// the reference. Returns fn's result.
  template <typename F>
  decltype(auto) with(std::uint64_t client, F&& fn) {
    shard& s = shards_[shard_of(client)];
    std::lock_guard<std::mutex> lock(s.mutex);
    client_entry& e = find_or_create(s, client);
    const std::size_t before = e.bytes;
    if constexpr (std::is_void_v<decltype(fn(e))>) {
      fn(e);
      reaccount(s, e, before);
      enforce_budget(s, client);
    } else {
      decltype(auto) r = fn(e);
      reaccount(s, e, before);
      enforce_budget(s, client);
      return r;
    }
  }

  /// Escalation level of a client (none when never seen).
  escalation level(std::uint64_t client) const;

  /// Fingerprints currently held for a client (0 when never seen).
  std::size_t history_size(std::uint64_t client) const;

  /// Consistent-hash owner shard of a client (exposed for tests and the
  /// replay bench's shard-occupancy report).
  std::size_t shard_of(std::uint64_t client) const noexcept;

  /// Extracts — snapshots and removes — up to `max_clients` clients for
  /// which `pred(client)` holds. Order is deterministic: shards in index
  /// order, client ids ascending within a shard. Extraction is a handoff,
  /// not an eviction: the eviction counters do not move, and escalated or
  /// banned clients are extracted like any other (their state must travel
  /// to the new owner).
  std::vector<client_record> extract_if(
      std::size_t max_clients, const std::function<bool(std::uint64_t)>& pred);

  /// Merges one handed-off record into the table (creating the entry on
  /// demand). Escalation level and match credit merge by max — state is
  /// monotone across owners, so replayed or crossed handoffs can never
  /// downgrade a ban — counters add, and the longer fingerprint history
  /// wins. Banned entries stay history-free.
  void restore(const client_record& rec);

  std::size_t bytes_used() const;
  table_stats stats() const;
  const table_config& config() const noexcept { return cfg_; }

 private:
  struct shard {
    mutable std::mutex mutex;
    std::vector<client_entry> entries;  ///< unordered; found by scan of map
    /// client -> index into entries (dense map keeps eviction O(1) swaps).
    std::vector<std::pair<std::uint64_t, std::size_t>> index;
    std::size_t bytes = 0;
    std::uint64_t op = 0;
    std::uint64_t evicted_fingerprints = 0;
    std::uint64_t evicted_clients = 0;
  };

  client_entry& find_or_create(shard& s, std::uint64_t client);
  static client_entry* find(shard& s, std::uint64_t client);
  static const client_entry* find(const shard& s, std::uint64_t client);
  static std::size_t entry_bytes(const client_entry& e) noexcept;
  void reaccount(shard& s, client_entry& e, std::size_t before) noexcept;
  /// Evicts under the shard lock until the shard fits its budget slice;
  /// `touched` is the client whose mutation triggered the check (trimmed
  /// first).
  void enforce_budget(shard& s, std::uint64_t touched);
  /// Trims one client's history down to `floor`; returns bytes freed.
  std::size_t trim_entry(shard& s, client_entry& e, std::size_t floor);
  void erase_entry(shard& s, std::uint64_t client,
                   bool count_eviction = true);

  table_config cfg_;
  std::size_t shard_budget_ = 0;
  /// Consistent-hash ring: (point, shard), sorted by point.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
  std::vector<shard> shards_;
};

}  // namespace advh::track
