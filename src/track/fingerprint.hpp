// Probabilistic content fingerprints for query-stream tracking.
//
// A query-based black-box attacker (the paper's own threat model) probes
// the deployment with long runs of *near-duplicate* inputs: each probe is
// the previous one plus a small perturbation. Blacklight's observation is
// that such probes collide heavily under a quantize-and-hash fingerprint
// even though they differ at full precision: quantize the input, hash
// every sliding window of the quantized stream, and keep only the K
// smallest hashes. Two images within a small L_inf ball share most of
// their quantized windows, so their top-K hash sets overlap strongly; two
// independent natural images overlap almost never. The fingerprint is
// probabilistic in the min-hash sense — the K smallest of a keyed hash
// family form a uniform sample of all window hashes, so the overlap of two
// fingerprints estimates the Jaccard similarity of the full window sets at
// a fraction of the memory.
//
// The salt plays Blacklight's secret-key role: an attacker who does not
// know it cannot craft perturbations that decollide the windows it
// samples.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace advh::track {

struct fingerprint_config {
  /// Quantization step applied to every input value before hashing.
  /// Perturbations below the step vanish entirely; larger ones still leave
  /// most windows untouched. Blacklight's pixel quantization analogue.
  double quantize_step = 0.05;
  /// Sliding-window length, in elements of the flattened input.
  std::size_t window = 16;
  /// Window stride; 1 = maximally overlapping windows.
  std::size_t stride = 1;
  /// Fingerprint size: the top_k smallest window hashes are kept.
  std::size_t top_k = 32;
  /// Keyed-hash salt (the deployment's secret in Blacklight).
  std::uint64_t salt = 0xadb1ac7ULL;
};

/// One query's content fingerprint: the top_k smallest keyed window
/// hashes, sorted ascending (canonical form, so equality and overlap are
/// order-free set operations).
struct fingerprint {
  std::vector<std::uint64_t> hashes;

  bool empty() const noexcept { return hashes.empty(); }
  /// Heap bytes this fingerprint pins (the table's accounting unit).
  std::size_t bytes() const noexcept {
    return hashes.capacity() * sizeof(std::uint64_t);
  }
};

/// Number of hashes the two (sorted) fingerprints share.
std::size_t overlap(const fingerprint& a, const fingerprint& b) noexcept;

/// Overlap as a fraction of the smaller fingerprint, in [0, 1]. Two
/// fingerprints of a near-duplicate pair score close to 1; independent
/// natural inputs score close to 0.
double match_fraction(const fingerprint& a, const fingerprint& b) noexcept;

/// Fingerprints one input. Deterministic in (x, cfg): no global state, no
/// clock, no allocation-order dependence — the same tensor always yields
/// byte-identical hashes, which is what makes the whole tracking layer
/// replayable. Throws std::invalid_argument on a degenerate config
/// (zero window/stride/top_k, or a non-positive quantize step).
fingerprint fingerprint_input(const tensor& x, const fingerprint_config& cfg);

}  // namespace advh::track
