#include "track/tracker.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace advh::track {

namespace {

/// Strict positive-integer parsing for the track env knobs, mirroring the
/// PR 4 convention (hpc/factory env_rate, serve env_positive): the whole
/// string must parse and land in [1, max_value].
std::size_t env_positive_int(const char* name, const char* value,
                             double max_value) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  const auto n = static_cast<std::size_t>(v);
  if (end == value || *end != '\0' || errno == ERANGE || !(v >= 1.0) ||
      v > max_value || static_cast<double>(n) != v) {
    throw std::invalid_argument(std::string(name) + "=\"" + value +
                                "\": expected an integer in [1, " +
                                std::to_string(max_value) + "]");
  }
  return n;
}

}  // namespace

track_config track_config_from_env(track_config base) {
  if (const char* env = std::getenv("ADVH_TRACK_SHARDS")) {
    base.table.shards = env_positive_int("ADVH_TRACK_SHARDS", env, 65536.0);
  }
  if (const char* env = std::getenv("ADVH_TRACK_BYTES")) {
    base.table.byte_budget = env_positive_int("ADVH_TRACK_BYTES", env, 1e15);
  }
  return base;
}

query_tracker::query_tracker(const serve::clock_face& clock, track_config cfg)
    : clock_(clock), cfg_(std::move(cfg)), table_(cfg_.table) {
  if (!(cfg_.match_fraction > 0.0) || cfg_.match_fraction > 1.0) {
    throw std::invalid_argument("track match_fraction must lie in (0, 1]");
  }
  if (!(cfg_.elevate_hits > 0.0) || !(cfg_.ban_hits >= cfg_.elevate_hits)) {
    throw std::invalid_argument(
        "track thresholds need 0 < elevate_hits <= ban_hits");
  }
  if (cfg_.hit_halflife.count() <= 0) {
    throw std::invalid_argument("track hit_halflife must be positive");
  }
  if (!(cfg_.trace_hit_weight >= 0.0) || cfg_.trace_hit_weight >= 1.0) {
    throw std::invalid_argument("track trace_hit_weight must lie in [0, 1)");
  }
}

void query_tracker::decay(client_entry& e, serve::clock_duration now) const {
  const std::int64_t mark = e.decay_mark_ns;
  const std::int64_t t = now.count();
  if (t <= mark) return;  // same instant (or clock shared across shards)
  const double halves = static_cast<double>(t - mark) /
                        static_cast<double>(cfg_.hit_halflife.count());
  const double factor = std::exp2(-halves);
  e.hits *= factor;
  e.trace_hits *= factor;
}

void query_tracker::escalate(client_entry& e, track_decision& d) {
  const double credit = e.hits + e.trace_hits;
  if (e.level == escalation::none && credit >= cfg_.elevate_hits) {
    e.level = escalation::elevated;
    d.newly_elevated = true;
  }
  // Bans rest on input-side evidence alone: fingerprint credit is immune
  // to measurement chaos, so ban decisions replay bitwise under
  // ADVH_FAULT_RATE.
  if (e.level == escalation::elevated && e.hits >= cfg_.ban_hits) {
    e.level = escalation::banned;
    d.newly_banned = true;
    // The flag is the only state a banned client still needs; dropping
    // the rest makes a ban shrink the table.
    e.history.clear();
    e.history.shrink_to_fit();
    e.last_sketch = hpc::trace_sketch{};
  }
  d.level = e.level;
  d.hits = e.hits;
}

track_decision query_tracker::observe(std::uint64_t client, const tensor& x) {
  const fingerprint fp = fingerprint_input(x, cfg_.fp);
  const auto now = clock_.now();

  track_decision d = table_.with(client, [&](client_entry& e) {
    track_decision out;
    ++e.queries;
    decay(e, now);
    e.decay_mark_ns = now.count();
    if (e.level == escalation::banned) {
      out.level = e.level;
      out.hits = e.hits;
      return out;
    }
    for (const fingerprint& h : e.history) {
      if (match_fraction(fp, h) >= cfg_.match_fraction) {
        out.matched = true;
        break;
      }
    }
    if (out.matched) {
      ++e.matched;
      e.hits += 1.0;
    }
    e.history.push_back(fp);
    while (e.history.size() > cfg_.table.max_history) e.history.pop_front();
    escalate(e, out);
    return out;
  });

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++queries_;
    if (d.matched) ++matched_;
    if (d.newly_elevated) ++elevations_;
    if (d.newly_banned) ++bans_;
  }
  return d;
}

bool query_tracker::record_trace(std::uint64_t client,
                                 const hpc::trace_sketch& s) {
  if (s.empty()) return false;
  const auto now = clock_.now();

  // Update the global baseline first (every served query feeds it), then
  // measure this sketch's deviation from it. The baseline is the
  // drift-canary cross-check: a fleet-wide baseline shift pulls the
  // baseline along, so clients are only blamed for deviations specific to
  // them.
  double baseline_dev = 0.0;
  {
    std::lock_guard<std::mutex> lock(baseline_mutex_);
    if (!baseline_seeded_ || baseline_levels_.size() != s.levels.size()) {
      baseline_levels_.assign(s.levels.begin(), s.levels.end());
      baseline_seeded_ = true;
    }
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t e = 0; e < s.levels.size(); ++e) {
      if (s.levels[e] == hpc::trace_sketch::unavailable) continue;
      const double level = static_cast<double>(s.levels[e]);
      sum += std::abs(level - baseline_levels_[e]);
      ++n;
      baseline_levels_[e] = (1.0 - cfg_.baseline_alpha) * baseline_levels_[e] +
                            cfg_.baseline_alpha * level;
    }
    baseline_dev = n == 0 ? 0.0 : sum / static_cast<double>(n);
  }

  bool corroborated = false;
  track_decision d = table_.with(client, [&](client_entry& e) {
    track_decision out;
    decay(e, now);
    e.decay_mark_ns = now.count();
    if (e.level != escalation::banned) {
      const bool same_computation =
          !e.last_sketch.empty() &&
          hpc::sketch_distance(e.last_sketch, s) <= cfg_.trace_match_level;
      if (same_computation && baseline_dev > cfg_.trace_baseline_level) {
        e.trace_hits += cfg_.trace_hit_weight;
        corroborated = true;
      }
      e.last_sketch = s;
      escalate(e, out);
    } else {
      out.level = e.level;
    }
    return out;
  });

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (corroborated) ++trace_corroborations_;
    if (d.newly_elevated) ++elevations_;
    if (d.newly_banned) ++bans_;
  }
  return corroborated;
}

void query_tracker::force_ban(std::uint64_t client) {
  table_.with(client, [&](client_entry& e) {
    e.level = escalation::banned;
    e.history.clear();
    e.history.shrink_to_fit();
    e.last_sketch = hpc::trace_sketch{};
  });
}

track_stats query_tracker::stats() const {
  track_stats out;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    out.queries = queries_;
    out.matched = matched_;
    out.elevations = elevations_;
    out.bans = bans_;
    out.trace_corroborations = trace_corroborations_;
  }
  out.table = table_.stats();
  return out;
}

}  // namespace advh::track
