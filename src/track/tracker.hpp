// Stateful per-client query-stream defense (Blacklight-style).
//
// Every verdict the detector produces judges one input in isolation, but
// the paper's threat model is a query-based black-box attacker — and such
// an attack arrives as a *campaign*: thousands of near-duplicate probes
// from one client, each individually clean-ish. The tracker closes that
// gap ("Stateful Detection of Black-Box Adversarial Attacks", Blacklight;
// PAPERS.md): it fingerprints every query (track/fingerprint), keeps
// per-client history in a sharded, memory-bounded table (track/table) and
// escalates clients whose recent queries collide:
//
//   none      — queries flow normally.
//   elevated  — enough fingerprint collisions accumulated: the serving
//               layer measures this client's queries at FULL fidelity
//               (rung-0 repeats and events) regardless of the current
//               degradation rung, so the campaign is scored on the best
//               evidence exactly when it matters.
//   banned    — collision credit crossed the ban threshold: admission
//               control sheds the client's queries outright
//               (rejected_banned) and its history is dropped — a ban
//               *shrinks* the table.
//
// Escalation is accelerated — never triggered alone — by the measurement
// side: near-identical HPC trace sketches (hpc/trace_sketch) from one
// client corroborate a campaign, but only when the client's trace also
// deviates from the *global* sketch baseline. That baseline check is the
// drift-canary cross-check in miniature: when the whole fleet's baseline
// moved (silicon drift, co-tenant change — PR 4's territory), every
// client sits near the new baseline and nobody gets blamed for it. Bans
// depend on input-side fingerprints alone, so they are bitwise stable
// under measurement chaos (ADVH_FAULT_RATE).
//
// Determinism: decisions are a pure function of the per-client observation
// sequence plus injected clock reads. The serving layer calls observe()
// in admission order under its scheduler lock, so a whole replayed run —
// including every ban — is bitwise identical at any worker thread count.
#pragma once

#include <chrono>
#include <cstdint>

#include "serve/clock.hpp"
#include "track/table.hpp"

namespace advh::track {

struct track_config {
  fingerprint_config fp{};
  table_config table{};
  /// A query whose fingerprint overlaps any of the client's recent
  /// fingerprints by at least this fraction counts as a match.
  double match_fraction = 0.5;
  /// Decayed match credit at or above which a client is elevated.
  double elevate_hits = 3.0;
  /// Decayed match credit at or above which a client is banned.
  double ban_hits = 8.0;
  /// Half-life of the match credit (injected-clock time): a client that
  /// stops colliding decays back toward zero instead of being one stray
  /// match away from escalation forever.
  serve::clock_duration hit_halflife = std::chrono::seconds(60);
  /// HPC corroboration: consecutive sketches within this distance
  /// (quarter-octave levels) count as "same computation"...
  double trace_match_level = 1.0;
  /// ...but only when the sketch also sits further than this from the
  /// global baseline (the drift-canary cross-check: fleet-wide shifts
  /// exonerate individual clients).
  double trace_baseline_level = 2.0;
  /// Match credit one corroborating trace adds (kept below 1 so traces
  /// accelerate escalation but can never ban on their own).
  double trace_hit_weight = 0.5;
  /// Decay factor of the global sketch baseline.
  double baseline_alpha = 0.05;
};

/// Applies the strict environment overrides to `base` and returns it:
/// ADVH_TRACK_SHARDS (positive integer) overrides table.shards and
/// ADVH_TRACK_BYTES (positive integer, bytes) overrides table.byte_budget.
/// A set-but-malformed knob throws std::invalid_argument — the PR 4
/// strict-validation contract: a typo in a deployment manifest must fail
/// loudly, not silently mis-size the defense.
track_config track_config_from_env(track_config base = track_config{});

/// Outcome of one observed query.
struct track_decision {
  escalation level = escalation::none;
  /// This query's fingerprint collided with the client's recent history.
  bool matched = false;
  bool newly_elevated = false;
  bool newly_banned = false;
  /// Decayed match credit after this query.
  double hits = 0.0;
};

struct track_stats {
  std::uint64_t queries = 0;
  std::uint64_t matched = 0;
  std::uint64_t elevations = 0;
  std::uint64_t bans = 0;
  std::uint64_t trace_corroborations = 0;
  table_stats table{};
};

class query_tracker {
 public:
  /// Time (credit decay) comes from the injected clock: virtual-clock
  /// drivers replay bit for bit.
  query_tracker(const serve::clock_face& clock, track_config cfg);

  /// Observes one query from `client`: fingerprints the input, scores it
  /// against the client's history, updates the decayed match credit and
  /// the escalation ladder. Clients never de-escalate — an attacker does
  /// not earn a clean slate by idling.
  track_decision observe(std::uint64_t client, const tensor& x);

  /// Feeds back the HPC trace sketch of a served query (serve layer /
  /// pipeline). May elevate a client (corroboration credit), never bans.
  /// Returns true when the sketch corroborated a campaign.
  bool record_trace(std::uint64_t client, const hpc::trace_sketch& s);

  /// Fingerprint-range handoff (fleet rebalance): extracts up to
  /// `max_clients` tracked clients matching `pred` — snapshot plus
  /// removal, so in-flight handoff state lives in exactly one place: the
  /// batch. Deterministic order; see fingerprint_table::extract_if.
  std::vector<client_record> export_clients(
      std::size_t max_clients, const std::function<bool(std::uint64_t)>& pred) {
    return table_.extract_if(max_clients, pred);
  }

  /// Merges handed-off records into this tracker's table (monotone
  /// escalation, max credit, add counters — see fingerprint_table::restore).
  void import_clients(const std::vector<client_record>& recs) {
    for (const client_record& r : recs) table_.restore(r);
  }

  /// Restores a durably recorded ban (fleet ban-ledger replay after a
  /// crash or ownership change). Idempotent and monotone: an existing
  /// entry is raised to banned, its history dropped; the ban counter does
  /// not move — the decision was counted where it was first made.
  void force_ban(std::uint64_t client);

  escalation level(std::uint64_t client) const { return table_.level(client); }
  std::size_t bytes_used() const { return table_.bytes_used(); }
  track_stats stats() const;
  const track_config& config() const noexcept { return cfg_; }
  const fingerprint_table& table() const noexcept { return table_; }

 private:
  /// Applies half-life decay to an entry's credits up to `now`.
  void decay(client_entry& e, serve::clock_duration now) const;
  /// Ladder transitions from the current credits; drops history on ban.
  void escalate(client_entry& e, track_decision& d);

  const serve::clock_face& clock_;
  track_config cfg_;
  fingerprint_table table_;

  mutable std::mutex stats_mutex_;
  std::uint64_t queries_ = 0;
  std::uint64_t matched_ = 0;
  std::uint64_t elevations_ = 0;
  std::uint64_t bans_ = 0;
  std::uint64_t trace_corroborations_ = 0;

  /// Global decaying per-event sketch baseline (drift cross-check).
  mutable std::mutex baseline_mutex_;
  std::vector<double> baseline_levels_;
  bool baseline_seeded_ = false;
};

}  // namespace advh::track
