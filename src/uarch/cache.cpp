#include "uarch/cache.hpp"

#include <bit>

#include "common/error.hpp"

namespace advh::uarch {

cache::cache(const cache_config& cfg) : cfg_(cfg) {
  ADVH_CHECK_MSG(std::has_single_bit(cfg_.line_bytes),
                 "line size must be a power of two");
  ADVH_CHECK(cfg_.associativity > 0);
  ADVH_CHECK(cfg_.size_bytes % (cfg_.line_bytes * cfg_.associativity) == 0);
  sets_ = cfg_.size_bytes / (cfg_.line_bytes * cfg_.associativity);
  ADVH_CHECK_MSG(std::has_single_bit(sets_),
                 "set count must be a power of two");
  line_shift_ = static_cast<std::size_t>(std::countr_zero(cfg_.line_bytes));
  lines_.assign(sets_ * cfg_.associativity, line{});
}

std::size_t cache::set_index(std::uint64_t addr) const noexcept {
  return static_cast<std::size_t>((addr >> line_shift_) & (sets_ - 1));
}

std::uint64_t cache::tag_of(std::uint64_t addr) const noexcept {
  return addr >> line_shift_;  // keep the set bits in the tag; harmless
}

bool cache::access(std::uint64_t addr, access_type type) {
  ++tick_;
  const std::size_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  line* base = lines_.data() + set * cfg_.associativity;

  if (type == access_type::load) {
    ++stats_.loads;
  } else {
    ++stats_.stores;
  }

  for (std::size_t w = 0; w < cfg_.associativity; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].lru = tick_;
      if (type == access_type::store) base[w].dirty = true;
      return true;
    }
  }

  // Miss: pick invalid way or LRU victim.
  if (type == access_type::load) {
    ++stats_.load_misses;
  } else {
    ++stats_.store_misses;
  }
  std::size_t victim = 0;
  bool found_invalid = false;
  for (std::size_t w = 0; w < cfg_.associativity; ++w) {
    if (!base[w].valid) {
      victim = w;
      found_invalid = true;
      break;
    }
    if (base[w].lru < base[victim].lru) victim = w;
  }
  if (!found_invalid && base[victim].valid) {
    ++stats_.evictions;
    if (base[victim].dirty) ++stats_.writebacks;
  }
  base[victim] = line{tag, tick_, true, type == access_type::store};
  return false;
}

void cache::fill(std::uint64_t addr) {
  ++tick_;
  const std::size_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  line* base = lines_.data() + set * cfg_.associativity;
  ++stats_.prefetch_fills;
  for (std::size_t w = 0; w < cfg_.associativity; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      // Already resident: refresh recency only.
      base[w].lru = tick_;
      return;
    }
  }
  std::size_t victim = 0;
  bool found_invalid = false;
  for (std::size_t w = 0; w < cfg_.associativity; ++w) {
    if (!base[w].valid) {
      victim = w;
      found_invalid = true;
      break;
    }
    if (base[w].lru < base[victim].lru) victim = w;
  }
  if (!found_invalid && base[victim].valid) {
    ++stats_.evictions;
    if (base[victim].dirty) ++stats_.writebacks;
  }
  base[victim] = line{tag, tick_, true, false};
}

bool cache::probe(std::uint64_t addr) const {
  const std::size_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  const line* base = lines_.data() + set * cfg_.associativity;
  for (std::size_t w = 0; w < cfg_.associativity; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void cache::reset() noexcept {
  for (auto& l : lines_) l = line{};
  tick_ = 0;
  stats_ = cache_stats{};
}

}  // namespace advh::uarch
