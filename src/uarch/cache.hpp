// Set-associative cache model with LRU replacement, write-back +
// write-allocate. Single-level building block for the hierarchy in
// hierarchy.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace advh::uarch {

enum class access_type { load, store };

struct cache_config {
  std::string name = "cache";
  std::size_t size_bytes = 32 * 1024;
  std::size_t line_bytes = 64;
  std::size_t associativity = 8;
};

struct cache_stats {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t prefetch_fills = 0;
  std::uint64_t load_misses = 0;
  std::uint64_t store_misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  std::uint64_t accesses() const noexcept { return loads + stores; }
  std::uint64_t misses() const noexcept { return load_misses + store_misses; }
  double miss_rate() const noexcept {
    return accesses() ? static_cast<double>(misses()) /
                            static_cast<double>(accesses())
                      : 0.0;
  }
};

class cache {
 public:
  explicit cache(const cache_config& cfg);

  /// Performs one access; returns true on hit. On miss the line is filled
  /// (write-allocate); a dirty eviction increments writebacks.
  bool access(std::uint64_t addr, access_type type);

  /// True if the line containing addr is currently resident.
  bool probe(std::uint64_t addr) const;

  /// Inserts the line containing addr without touching the demand-access
  /// statistics (prefetch fill). Evictions/writebacks are still counted.
  void fill(std::uint64_t addr);

  void reset() noexcept;
  const cache_stats& stats() const noexcept { return stats_; }
  const cache_config& config() const noexcept { return cfg_; }
  std::size_t num_sets() const noexcept { return sets_; }

 private:
  struct line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // last-use timestamp
    bool valid = false;
    bool dirty = false;
  };

  std::size_t set_index(std::uint64_t addr) const noexcept;
  std::uint64_t tag_of(std::uint64_t addr) const noexcept;

  cache_config cfg_;
  std::size_t sets_;
  std::size_t line_shift_;
  std::vector<line> lines_;  // sets_ * associativity, set-major
  std::uint64_t tick_ = 0;
  cache_stats stats_;
};

}  // namespace advh::uarch
