#include "uarch/static_model.hpp"

#include <algorithm>

namespace advh::uarch {

namespace {

constexpr std::size_t kLine = 64;

std::size_t lines_of(std::size_t bytes) { return (bytes + kLine - 1) / kLine; }

struct accumulator {
  // Instruction count is linear in the per-layer active counts.
  std::uint64_t insn_lo = 0;
  std::uint64_t insn_hi = 0;
  // Branch count is pure shape arithmetic (gate branches are vectorised
  // away; only back-edges and the extra_branches term exist).
  std::uint64_t branches = 0;
  // Back-edges run through gshare; each may or may not mispredict.
  std::uint64_t predicted_branches = 0;
  // Data-side access totals (loads/stores through L1-D).
  std::uint64_t loads_lo = 0;
  std::uint64_t loads_hi = 0;
  std::uint64_t stores_lo = 0;
  std::uint64_t stores_hi = 0;
  // Instruction fetches through L1-I (exact: code sweeps are dense).
  std::uint64_t fetches = 0;
  // Compulsory-miss floors: distinct lines guaranteed to be touched.
  std::uint64_t code_lines = 0;
  std::size_t act_lines[2] = {0, 0};  ///< max sweep extent per ping-pong region
};

}  // namespace

static_envelope analyze_abstract_trace(const nn::inference_trace& trace,
                                       const trace_gen_config& cfg) {
  accumulator a;
  const std::size_t bpod = std::max<std::uint64_t>(cfg.branch_per_out_div, 1);
  const std::size_t code_lines_per_sweep = cfg.code_bytes_per_layer / kLine;
  bool write_to_second = true;  // mirrors trace_generator ping-pong state

  for (const nn::layer_trace_entry& e : trace.layers) {
    const std::size_t in_region = write_to_second ? 0 : 1;
    const std::size_t out_region = write_to_second ? 1 : 0;
    // Back-edge stream: one chunk branch per 16 loop iterations.
    const std::size_t chunks = e.in_numel / 16 + 1;
    a.branches += chunks;
    a.predicted_branches += chunks;

    switch (e.kind) {
      case nn::layer_kind::conv2d:
      case nn::layer_kind::depthwise_conv2d:
      case nn::layer_kind::linear: {
        const std::size_t out_channels =
            std::max<std::size_t>(e.out_channels, 1);
        const std::size_t out_bytes =
            std::max<std::size_t>(e.out_numel * sizeof(float), kLine);
        const std::size_t fanout =
            std::min<std::size_t>(cfg.accum_fanout, out_channels);

        // Sparsity-dependent gather/accumulate stream: active count is
        // unknown, abstracted to [0, in_numel]. Per active element: one
        // own-value load, panel_lines weight-panel loads, and a
        // load+store pair per fanout plane.
        const std::uint64_t alpha_hi = e.in_numel;
        a.loads_hi += alpha_hi * (1 + cfg.panel_lines + fanout);
        a.stores_hi += alpha_hi * fanout;

        // Dense epilogue: unconditional store sweep of the output buffer.
        const std::size_t epilogue = lines_of(out_bytes);
        a.stores_lo += epilogue;
        a.stores_hi += epilogue;
        a.act_lines[out_region] =
            std::max(a.act_lines[out_region], epilogue);

        const std::uint64_t insn_fixed = cfg.insn_per_in * e.in_numel +
                                         cfg.insn_per_out * e.out_numel +
                                         cfg.insn_per_layer;
        a.insn_lo += insn_fixed;
        a.insn_hi += insn_fixed + cfg.insn_per_active * alpha_hi;
        a.branches += (e.in_numel + e.out_numel) / bpod + 64;

        const std::size_t sweeps =
            1 + e.out_numel / std::max<std::size_t>(cfg.code_sweep_interval, 1);
        a.fetches += sweeps * code_lines_per_sweep;
        a.code_lines += code_lines_per_sweep;
        write_to_second = !write_to_second;
        break;
      }
      case nn::layer_kind::relu: {
        // In-place vectorised max: load sweep + store sweep of one region.
        const std::size_t in_lines = lines_of(e.in_numel * sizeof(float));
        const std::size_t out_lines = lines_of(e.out_numel * sizeof(float));
        a.loads_lo += in_lines;
        a.loads_hi += in_lines;
        a.stores_lo += out_lines;
        a.stores_hi += out_lines;
        a.act_lines[in_region] = std::max(
            a.act_lines[in_region], std::max(in_lines, out_lines));

        a.insn_lo += 3 * e.in_numel + cfg.insn_per_layer / 4;
        a.insn_hi += 3 * e.in_numel + cfg.insn_per_layer / 4;
        a.branches += e.in_numel / bpod + 16;
        a.fetches += code_lines_per_sweep;
        a.code_lines += code_lines_per_sweep;
        break;  // in place: no buffer flip
      }
      default: {
        // Structural sweep: read one region, write the other.
        const std::size_t in_lines = lines_of(e.in_numel * sizeof(float));
        const std::size_t out_lines = lines_of(e.out_numel * sizeof(float));
        a.loads_lo += in_lines;
        a.loads_hi += in_lines;
        a.stores_lo += out_lines;
        a.stores_hi += out_lines;
        a.act_lines[in_region] = std::max(a.act_lines[in_region], in_lines);
        a.act_lines[out_region] = std::max(a.act_lines[out_region], out_lines);

        const std::uint64_t insn =
            4 * e.in_numel + 2 * e.out_numel + cfg.insn_per_layer / 4;
        a.insn_lo += insn;
        a.insn_hi += insn;
        a.branches += (e.in_numel + e.out_numel) / bpod + 16;
        a.fetches += code_lines_per_sweep;
        a.code_lines += code_lines_per_sweep;
        write_to_second = !write_to_second;
        break;
      }
    }
  }

  // Compulsory-miss floors. Every distinct line's first access misses the
  // cold L1 and the cold LLC once. The sweep/code access set runs
  // regardless of sparsity, so its distinct-line count is a sound lower
  // bound; the sparsity-dependent gathers only add accesses. An L1-D
  // prefetcher can satisfy data lines ahead of their demand access, so
  // only the instruction-side floor survives when one is enabled.
  const bool prefetching = cfg.caches.l1d_prefetch != prefetcher_kind::none;
  const std::uint64_t data_floor =
      prefetching
          ? 0
          : static_cast<std::uint64_t>(a.act_lines[0]) + a.act_lines[1];

  static_envelope env;
  env.instructions = {static_cast<double>(a.insn_lo),
                      static_cast<double>(a.insn_hi)};
  env.branches = {static_cast<double>(a.branches),
                  static_cast<double>(a.branches)};
  env.branch_misses = {0.0, static_cast<double>(a.predicted_branches)};

  const double data_hi = static_cast<double>(a.loads_hi + a.stores_hi);
  const double fetches_d = static_cast<double>(a.fetches);
  // L1-I is never prefetch-filled, so its compulsory misses — and the LLC
  // accesses they cause — survive prefetching; prefetch fills can turn the
  // corresponding LLC *misses* into hits, so that floor does not.
  env.cache_references = {static_cast<double>(data_floor + a.code_lines),
                          data_hi + fetches_d};
  env.cache_misses = {prefetching ? 0.0
                                  : static_cast<double>(data_floor +
                                                        a.code_lines),
                      data_hi + fetches_d};
  env.l1d_load_misses = {0.0, static_cast<double>(a.loads_hi)};
  env.l1i_load_misses = {static_cast<double>(a.code_lines), fetches_d};
  // Instruction fetches fall through to the LLC on the load path.
  env.llc_load_misses = {prefetching ? 0.0
                                     : static_cast<double>(a.code_lines),
                         static_cast<double>(a.loads_hi) + fetches_d};
  env.llc_store_misses = {0.0, static_cast<double>(a.stores_hi)};
  return env;
}

}  // namespace advh::uarch
