// gshare branch predictor: global history XOR PC indexing a table of
// 2-bit saturating counters. The sparsity-gate branch stream of the
// inference trace flows through this model to produce the branch-misses
// counter.
#pragma once

#include <cstdint>
#include <vector>

namespace advh::uarch {

struct branch_stats {
  std::uint64_t branches = 0;
  std::uint64_t mispredictions = 0;

  double misprediction_rate() const noexcept {
    return branches ? static_cast<double>(mispredictions) /
                          static_cast<double>(branches)
                    : 0.0;
  }
};

class gshare_predictor {
 public:
  /// `table_bits` counters of 2 bits; history length equals table_bits.
  explicit gshare_predictor(std::size_t table_bits = 12);

  /// Records one executed branch; returns true if it was predicted
  /// correctly.
  bool execute(std::uint64_t pc, bool taken);

  void reset() noexcept;
  const branch_stats& stats() const noexcept { return stats_; }

 private:
  std::size_t table_bits_;
  std::uint64_t history_ = 0;
  std::vector<std::uint8_t> table_;  // 2-bit counters, init weakly taken
  branch_stats stats_;
};

}  // namespace advh::uarch
