#include "uarch/prefetcher.hpp"

namespace advh::uarch {

std::uint64_t prefetcher::observe(std::uint64_t line) {
  switch (kind_) {
    case prefetcher_kind::none:
      return 0;
    case prefetcher_kind::next_line:
      ++stats_.issued;
      return line + 1;
    case prefetcher_kind::stride: {
      const std::int64_t stride =
          static_cast<std::int64_t>(line) -
          static_cast<std::int64_t>(last_line_);
      std::uint64_t target = 0;
      if (stride != 0 && stride == last_stride_) {
        // Two identical strides in a row: confirmed stream.
        stride_confirmed_ = true;
      } else if (stride != last_stride_) {
        stride_confirmed_ = false;
      }
      if (stride_confirmed_) {
        const std::int64_t t = static_cast<std::int64_t>(line) + stride;
        if (t > 0) {
          target = static_cast<std::uint64_t>(t);
          ++stats_.issued;
        }
      }
      last_stride_ = stride;
      last_line_ = line;
      return target;
    }
  }
  return 0;
}

void prefetcher::reset() noexcept {
  last_line_ = 0;
  last_stride_ = 0;
  stride_confirmed_ = false;
  stats_ = prefetch_stats{};
}

}  // namespace advh::uarch
