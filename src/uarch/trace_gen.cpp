#include "uarch/trace_gen.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace advh::uarch {

namespace {
// Virtual address-space layout of the modelled inference runtime.
constexpr std::uint64_t kWeightRegion = 0x1000'0000;
constexpr std::uint64_t kActRegionA = 0x2000'0000;
constexpr std::uint64_t kActRegionB = 0x2800'0000;
constexpr std::uint64_t kCodeRegion = 0x3000'0000;
constexpr std::uint64_t kLine = 64;
}  // namespace

trace_generator::trace_generator(const trace_gen_config& cfg)
    : cfg_(cfg),
      mem_(cfg.caches),
      bp_(cfg.predictor_bits),
      next_weight_base_(kWeightRegion) {}

std::uint64_t trace_generator::weight_base(std::size_t layer_idx) const {
  ADVH_CHECK(layer_idx < weight_bases_.size());
  return weight_bases_[layer_idx];
}

std::uint64_t trace_generator::code_base(std::size_t layer_idx) const {
  return kCodeRegion +
         static_cast<std::uint64_t>(layer_idx) * cfg_.code_bytes_per_layer;
}

void trace_generator::sweep(std::uint64_t base, std::size_t bytes,
                            access_type type) {
  const std::size_t lines = (bytes + kLine - 1) / kLine;
  for (std::size_t l = 0; l < lines; ++l) {
    mem_.data_access(base + l * kLine, type);
  }
}

void trace_generator::code_sweep(std::size_t layer_idx) {
  const std::uint64_t base = code_base(layer_idx);
  const std::size_t lines = cfg_.code_bytes_per_layer / kLine;
  for (std::size_t l = 0; l < lines; ++l) mem_.fetch(base + l * kLine);
}

void trace_generator::loop_branches(std::size_t layer_idx,
                                    std::size_t iterations) {
  // Vectorised kernels are branchless at element level; the only branches
  // are loop back-edges (taken except on exit), which gshare learns almost
  // perfectly. One back-edge per unroll chunk of 16 elements.
  const std::uint64_t pc = code_base(layer_idx) + 0x8;
  const std::size_t chunks = iterations / 16 + 1;
  for (std::size_t c = 0; c < chunks; ++c) {
    bp_.execute(pc, c + 1 != chunks);
  }
}

void trace_generator::replay_parametric(const nn::layer_trace_entry& e,
                                        std::size_t layer_idx) {
  const std::uint64_t w_base = weight_base(layer_idx);
  const std::uint64_t in_base = write_to_second_ ? kActRegionA : kActRegionB;
  const std::uint64_t out_base = write_to_second_ ? kActRegionB : kActRegionA;

  const std::size_t in_spatial = std::max<std::size_t>(e.in_spatial, 1);
  const std::size_t out_channels = std::max<std::size_t>(e.out_channels, 1);
  const std::size_t out_spatial = std::max<std::size_t>(e.out_spatial, 1);
  const std::size_t w_bytes = std::max<std::size_t>(e.weight_bytes, kLine);
  const std::size_t out_bytes =
      std::max<std::size_t>(e.out_numel * sizeof(float), kLine);

  // The unfolded working set (im2col expands a KxK conv's effective
  // footprint): each input channel owns a contiguous panel of it.
  const std::size_t in_channels = std::max<std::size_t>(e.in_channels, 1);
  const std::size_t panel_bytes = std::max<std::size_t>(
      (w_bytes * cfg_.unfold_factor / in_channels + kLine - 1) / kLine * kLine,
      kLine);
  const std::size_t panel_lines = panel_bytes / kLine;
  const std::size_t out_plane_bytes = out_spatial * sizeof(float);
  const std::size_t fanout =
      std::min<std::size_t>(cfg_.accum_fanout, out_channels);

  // Sparsity-aware gather: active elements only. The vectorised gate is
  // branchless, so nothing here reaches the branch predictor.
  //
  // Each active (channel, spatial-block) pair touches one line of the
  // channel's panel, so the touched-line set is a fingerprint of the
  // activation pattern. In wide early layers most block slots are hit
  // anyway and the footprint saturates (shape-constant); in the narrow
  // deep layers — where activations are class-semantic — each active
  // unit contributes a distinct line, which is the data-flow signal
  // AdvHunter monitors.
  for (std::uint32_t i : e.active_inputs) {
    // Load the element's own value.
    mem_.data_access(in_base + static_cast<std::uint64_t>(i) * sizeof(float),
                     access_type::load);

    const std::size_t channel = i / in_spatial;
    const std::size_t block = (i % in_spatial) / cfg_.spatial_block;
    const std::uint64_t panel =
        w_base + static_cast<std::uint64_t>(channel) * panel_bytes;
    for (std::size_t l = 0; l < cfg_.panel_lines; ++l) {
      mem_.data_access(panel + ((block + l * 0x61ULL) % panel_lines) * kLine,
                       access_type::load);
    }

    // Accumulate into the output window at this spatial position across a
    // sample of output-channel planes.
    const std::size_t spatial_in = i % in_spatial;
    const std::size_t spatial_out =
        in_spatial > 1 ? spatial_in * out_spatial / in_spatial : 0;
    for (std::size_t f = 0; f < fanout; ++f) {
      const std::size_t plane = f * out_channels / fanout;
      const std::uint64_t addr =
          out_base + (plane * out_plane_bytes + spatial_out * sizeof(float)) %
                         out_bytes;
      mem_.data_access(addr, access_type::load);
      mem_.data_access(addr, access_type::store);
    }
  }

  // Dense epilogue: bias add + write-out of the full output buffer.
  sweep(out_base, out_bytes, access_type::store);

  // Instruction-side activity: dominated by the dense loop structure
  // (shape-dependent, input-independent), with a small gather term.
  const std::size_t n_active = e.active_inputs.size();
  instructions_ += cfg_.insn_per_in * e.in_numel +
                   cfg_.insn_per_active * n_active +
                   cfg_.insn_per_out * e.out_numel + cfg_.insn_per_layer;
  extra_branches_ += (e.in_numel + e.out_numel) / cfg_.branch_per_out_div + 64;
  loop_branches(layer_idx, e.in_numel);
  const std::size_t sweeps =
      1 + e.out_numel / std::max<std::size_t>(cfg_.code_sweep_interval, 1);
  for (std::size_t s = 0; s < sweeps; ++s) code_sweep(layer_idx);

  write_to_second_ = !write_to_second_;
}

void trace_generator::replay_activation(const nn::layer_trace_entry& e,
                                        std::size_t layer_idx) {
  const std::uint64_t in_base = write_to_second_ ? kActRegionA : kActRegionB;

  // ReLU executes in place as a vectorised max — branchless, so the
  // activation mask never reaches the branch predictor.
  sweep(in_base, e.in_numel * sizeof(float), access_type::load);
  sweep(in_base, e.out_numel * sizeof(float), access_type::store);

  instructions_ += 3 * e.in_numel + cfg_.insn_per_layer / 4;
  extra_branches_ += e.in_numel / cfg_.branch_per_out_div + 16;
  loop_branches(layer_idx, e.in_numel);
  code_sweep(layer_idx);
  // In-place: no buffer flip.
}

void trace_generator::replay_structural(const nn::layer_trace_entry& e,
                                        std::size_t layer_idx) {
  const std::uint64_t in_base = write_to_second_ ? kActRegionA : kActRegionB;
  const std::uint64_t out_base = write_to_second_ ? kActRegionB : kActRegionA;

  sweep(in_base, e.in_numel * sizeof(float), access_type::load);
  sweep(out_base, e.out_numel * sizeof(float), access_type::store);

  instructions_ += 4 * e.in_numel + 2 * e.out_numel + cfg_.insn_per_layer / 4;
  extra_branches_ += (e.in_numel + e.out_numel) / cfg_.branch_per_out_div + 16;
  loop_branches(layer_idx, e.in_numel);
  code_sweep(layer_idx);
  write_to_second_ = !write_to_second_;
}

uarch_counts trace_generator::run(const nn::inference_trace& trace) {
  mem_.reset();
  bp_.reset();
  instructions_ = 0;
  extra_branches_ = 0;
  write_to_second_ = true;

  // Static weight layout: consecutive regions in trace order, sized by the
  // unfolded working set. The layout is identical across inferences of the
  // same model, as in a real runtime.
  weight_bases_.clear();
  next_weight_base_ = kWeightRegion;
  for (const auto& e : trace.layers) {
    weight_bases_.push_back(next_weight_base_);
    const std::size_t span =
        std::max<std::size_t>(e.weight_bytes, 1) * cfg_.unfold_factor;
    next_weight_base_ += ((span + kLine - 1) / kLine) * kLine;
  }

  for (std::size_t idx = 0; idx < trace.layers.size(); ++idx) {
    const auto& e = trace.layers[idx];
    switch (e.kind) {
      case nn::layer_kind::conv2d:
      case nn::layer_kind::depthwise_conv2d:
      case nn::layer_kind::linear:
        replay_parametric(e, idx);
        break;
      case nn::layer_kind::relu:
        replay_activation(e, idx);
        break;
      default:
        replay_structural(e, idx);
        break;
    }
  }

  uarch_counts c;
  c.instructions = instructions_;
  c.branches = bp_.stats().branches + extra_branches_;
  c.branch_misses = bp_.stats().mispredictions;
  c.cache_references = mem_.llc_references();
  c.cache_misses = mem_.llc_misses();
  c.l1d_load_misses = mem_.l1d().stats().load_misses;
  c.l1i_load_misses = mem_.l1i().stats().load_misses;
  c.llc_load_misses = mem_.llc_load_misses();
  c.llc_store_misses = mem_.llc_store_misses();
  return c;
}

}  // namespace advh::uarch
