// Converts an inference data-flow trace into a microarchitectural event
// profile by replaying it through the cache hierarchy and branch predictor.
//
// The replay models a sparsity-aware inference runtime:
//   * every input element of a parametric layer is tested by a gate branch
//     (taken iff the element is non-zero) — this branch stream feeds the
//     gshare predictor;
//   * every *active* element loads its own value, gathers the weight panel
//     of its channel, and accumulates into a window of the output buffer
//     whose address depends on the element's spatial position;
//   * structural layers (relu/pool/bn/...) sweep their buffers
//     sequentially.
//
// Only the gather and accumulate streams depend on *which* neurons are
// active — the mechanism the paper attributes the cache-miss signal to.
// Instruction and branch counts depend almost entirely on tensor shapes,
// which is why those events carry no signal (Figure 3 / Table 2).
#pragma once

#include "nn/trace.hpp"
#include "uarch/branch_predictor.hpp"
#include "uarch/hierarchy.hpp"

namespace advh::uarch {

/// perf-style event profile of one inference.
struct uarch_counts {
  std::uint64_t instructions = 0;
  std::uint64_t branches = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t l1d_load_misses = 0;
  std::uint64_t l1i_load_misses = 0;
  std::uint64_t llc_load_misses = 0;
  std::uint64_t llc_store_misses = 0;
};

struct trace_gen_config {
  hierarchy_config caches{};
  std::size_t predictor_bits = 12;

  /// Unfolded-weight lines gathered per active input element.
  std::size_t panel_lines = 1;
  /// Output-channel planes the accumulate window touches per active input.
  std::size_t accum_fanout = 1;
  /// Spatial elements sharing one gather key (vector width of the runtime).
  std::size_t spatial_block = 4;
  /// Unfolded working-set multiplier over raw weight bytes (im2col expands
  /// a 3x3 conv's effective footprint by ~K^2; we use a bounded factor).
  std::size_t unfold_factor = 6;
  /// Modelled code footprint per layer.
  std::size_t code_bytes_per_layer = 2048;
  /// One code sweep per this many output elements (loop body refetch).
  std::size_t code_sweep_interval = 64;

  // Instruction cost model (instructions retired per unit of work).
  // insn_per_active defaults to 0: masked-SIMD gathers retire the same
  // instruction count whatever the mask — only the memory side varies.
  std::uint64_t insn_per_active = 0;
  std::uint64_t insn_per_out = 40;
  std::uint64_t insn_per_in = 6;
  std::uint64_t insn_per_layer = 1800;
  /// One scalar branch per this many elements (vectorised inner loops).
  std::uint64_t branch_per_out_div = 8;
};

class trace_generator {
 public:
  explicit trace_generator(const trace_gen_config& cfg = {});

  /// Replays one inference trace from a cold pipeline state and returns
  /// the event profile. Deterministic in the trace.
  uarch_counts run(const nn::inference_trace& trace);

  const trace_gen_config& config() const noexcept { return cfg_; }

 private:
  void replay_parametric(const nn::layer_trace_entry& e, std::size_t layer_idx);
  void replay_activation(const nn::layer_trace_entry& e, std::size_t layer_idx);
  void replay_structural(const nn::layer_trace_entry& e, std::size_t layer_idx);

  /// Sequential line sweep over a buffer region.
  void sweep(std::uint64_t base, std::size_t bytes, access_type type);
  void code_sweep(std::size_t layer_idx);
  /// Loop back-edge branch stream (taken except on exit) through gshare.
  void loop_branches(std::size_t layer_idx, std::size_t iterations);

  std::uint64_t weight_base(std::size_t layer_idx) const;
  std::uint64_t code_base(std::size_t layer_idx) const;

  trace_gen_config cfg_;
  memory_hierarchy mem_;
  gshare_predictor bp_;
  std::uint64_t instructions_ = 0;
  std::uint64_t extra_branches_ = 0;
  // Ping-pong activation buffers: each layer reads one, writes the other.
  bool write_to_second_ = true;
  std::vector<std::uint64_t> weight_bases_;  // running layout per layer
  std::uint64_t next_weight_base_;
};

}  // namespace advh::uarch
