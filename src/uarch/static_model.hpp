// Static (abstract-interpretation) counterpart of the trace replayer.
//
// trace_gen.cpp replays one *concrete* inference trace — with its
// data-dependent active sets — through the cache and branch models.
// This header derives, from shapes and parameter footprints alone, a
// sound interval envelope for every event the replay can produce:
// the active-input count of each parametric layer is abstracted to
// [0, in_numel] and every derived count is tracked as [lo, hi].
//
// Soundness argument per counter (cold caches, default no prefetcher):
//   instructions    exact linear form in the active counts — tight.
//   branches        back-edge chunks + extra_branches are pure shape
//                   arithmetic — a single point.
//   branch_misses   at most every predicted back-edge; at least none.
//   cache_*         upper bound: every access misses at every level.
//                   lower bound: compulsory misses of the access set that
//                   happens regardless of sparsity (buffer sweeps + code
//                   footprint) — each distinct line misses a cold cache
//                   at least once.
// An enabled L1-D prefetcher can satisfy data lines before their demand
// access, so data-side lower bounds collapse to the instruction footprint.
//
// The analysis envelope pass (src/analysis/envelope_pass) feeds fitted
// GMM templates through these intervals to catch miscalibrated, drifted
// or tampered detector artifacts offline, with zero measurements.
#pragma once

#include <algorithm>

#include "nn/trace.hpp"
#include "uarch/trace_gen.hpp"

namespace advh::uarch {

/// Closed interval of feasible values for one event counter.
struct count_interval {
  double lo = 0.0;
  double hi = 0.0;

  /// True when `v` lies inside the interval widened by
  /// max(rel_margin * hi, abs_margin) on both sides.
  bool contains(double v, double rel_margin = 0.0,
                double abs_margin = 0.0) const noexcept {
    const double slack = std::max(rel_margin * hi, abs_margin);
    return v >= lo - slack && v <= hi + slack;
  }
};

/// Per-event feasibility envelope of one inference of a fixed model under
/// a fixed trace_gen_config. Field order mirrors uarch_counts.
struct static_envelope {
  count_interval instructions;
  count_interval branches;
  count_interval branch_misses;
  count_interval cache_references;
  count_interval cache_misses;
  count_interval l1d_load_misses;
  count_interval l1i_load_misses;
  count_interval llc_load_misses;
  count_interval llc_store_misses;
};

/// Abstractly interprets an inference trace whose entries carry geometry
/// but whose active sets are unknown (entries produced by
/// analysis::abstract_inference_trace, or concrete entries whose active
/// sets are deliberately ignored). Mirrors trace_generator::run arithmetic
/// exactly on the instruction/branch side and bounds the cache side.
static_envelope analyze_abstract_trace(const nn::inference_trace& trace,
                                       const trace_gen_config& cfg = {});

}  // namespace advh::uarch
