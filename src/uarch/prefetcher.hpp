// Hardware prefetcher models.
//
// Real cores hide much of the streaming traffic AdvHunter's simulator
// replays (buffer sweeps) behind next-line / stride prefetchers, which
// *reduces* the constant part of the miss profile and leaves the
// data-dependent gather misses — the signal — more exposed. The ablation
// bench (bench_ablation_uarch) quantifies this. Prefetches are issued into
// the cache that missed, tagged so they do not inflate demand-miss counts.
#pragma once

#include <cstdint>

namespace advh::uarch {

enum class prefetcher_kind {
  none,
  next_line,  ///< on miss to line L, prefetch L+1
  stride,     ///< per-PC-less global stride detector (IP-agnostic stream)
};

struct prefetch_stats {
  std::uint64_t issued = 0;
  std::uint64_t useful_hint = 0;  ///< prefetches of lines later demanded
};

/// Decides which line (if any) to prefetch after a demand access.
/// Stateless for next_line; the stride detector keeps a small history.
class prefetcher {
 public:
  explicit prefetcher(prefetcher_kind kind = prefetcher_kind::none)
      : kind_(kind) {}

  /// Observes a demand access to `line` (line-granular address / 64).
  /// Returns the line to prefetch, or 0 when none (line 0 is never a
  /// legitimate prefetch target given the simulator's address layout).
  std::uint64_t observe(std::uint64_t line);

  prefetcher_kind kind() const noexcept { return kind_; }
  const prefetch_stats& stats() const noexcept { return stats_; }
  void note_useful() noexcept { ++stats_.useful_hint; }
  void reset() noexcept;

 private:
  prefetcher_kind kind_;
  std::uint64_t last_line_ = 0;
  std::int64_t last_stride_ = 0;
  bool stride_confirmed_ = false;
  prefetch_stats stats_;
};

}  // namespace advh::uarch
