// Three-cache memory hierarchy: split L1 (data / instruction) in front of
// a unified last-level cache. perf-style event counts are derived from the
// per-level statistics:
//
//   cache-references      = LLC accesses (L1 misses that reach the LLC)
//   cache-misses          = LLC misses
//   L1-dcache-load-misses = L1-D load misses
//   L1-icache-load-misses = L1-I fetch misses
//   LLC-load-misses       = LLC misses on the load path
//   LLC-store-misses      = LLC misses on the store path
#pragma once

#include "uarch/cache.hpp"
#include "uarch/prefetcher.hpp"

namespace advh::uarch {

struct hierarchy_config {
  cache_config l1d{"L1-D", 8 * 1024, 64, 4};
  cache_config l1i{"L1-I", 8 * 1024, 64, 4};
  cache_config llc{"LLC", 64 * 1024, 64, 8};
  /// L1-D demand-miss prefetcher (fills L1-D and the LLC).
  prefetcher_kind l1d_prefetch = prefetcher_kind::none;
};

class memory_hierarchy {
 public:
  explicit memory_hierarchy(const hierarchy_config& cfg = {});

  /// Data load/store through L1-D, falling through to the LLC on miss.
  void data_access(std::uint64_t addr, access_type type);

  /// Instruction fetch through L1-I, falling through to the LLC on miss.
  void fetch(std::uint64_t addr);

  void reset() noexcept;

  const cache& l1d() const noexcept { return l1d_; }
  const prefetcher& l1d_prefetcher() const noexcept { return prefetch_; }
  const cache& l1i() const noexcept { return l1i_; }
  const cache& llc() const noexcept { return llc_; }

  std::uint64_t llc_references() const noexcept {
    return llc_.stats().accesses();
  }
  std::uint64_t llc_misses() const noexcept { return llc_.stats().misses(); }
  std::uint64_t llc_load_misses() const noexcept {
    return llc_.stats().load_misses;
  }
  std::uint64_t llc_store_misses() const noexcept {
    return llc_.stats().store_misses;
  }

 private:
  cache l1d_;
  cache l1i_;
  cache llc_;
  prefetcher prefetch_;
};

}  // namespace advh::uarch
