#include "uarch/branch_predictor.hpp"

#include "common/error.hpp"

namespace advh::uarch {

gshare_predictor::gshare_predictor(std::size_t table_bits)
    : table_bits_(table_bits) {
  ADVH_CHECK(table_bits_ >= 4 && table_bits_ <= 24);
  table_.assign(std::size_t{1} << table_bits_, 1);  // weakly not-taken
}

bool gshare_predictor::execute(std::uint64_t pc, bool taken) {
  const std::uint64_t mask = (std::uint64_t{1} << table_bits_) - 1;
  const std::size_t idx =
      static_cast<std::size_t>(((pc >> 2) ^ history_) & mask);
  std::uint8_t& ctr = table_[idx];
  const bool predicted_taken = ctr >= 2;

  ++stats_.branches;
  const bool correct = predicted_taken == taken;
  if (!correct) ++stats_.mispredictions;

  if (taken && ctr < 3) ++ctr;
  if (!taken && ctr > 0) --ctr;
  history_ = ((history_ << 1) | (taken ? 1 : 0)) & mask;
  return correct;
}

void gshare_predictor::reset() noexcept {
  for (auto& c : table_) c = 1;
  history_ = 0;
  stats_ = branch_stats{};
}

}  // namespace advh::uarch
