#include "uarch/hierarchy.hpp"

namespace advh::uarch {

memory_hierarchy::memory_hierarchy(const hierarchy_config& cfg)
    : l1d_(cfg.l1d), l1i_(cfg.l1i), llc_(cfg.llc), prefetch_(cfg.l1d_prefetch) {}

void memory_hierarchy::data_access(std::uint64_t addr, access_type type) {
  const bool hit = l1d_.access(addr, type);
  if (!hit) {
    // Write-allocate: a store miss fetches the line before writing, so the
    // LLC sees it on the store path.
    llc_.access(addr, type);
  }
  // The prefetcher trains on the demand stream (hits included, as L1
  // streamers do) and fills both levels without inflating demand
  // statistics.
  if (prefetch_.kind() != prefetcher_kind::none) {
    const std::uint64_t line = addr / l1d_.config().line_bytes;
    const std::uint64_t target = prefetch_.observe(line);
    if (target != 0) {
      const std::uint64_t target_addr = target * l1d_.config().line_bytes;
      if (!l1d_.probe(target_addr)) {
        l1d_.fill(target_addr);
        llc_.fill(target_addr);
        prefetch_.note_useful();
      }
    }
  }
}

void memory_hierarchy::fetch(std::uint64_t addr) {
  if (!l1i_.access(addr, access_type::load)) {
    llc_.access(addr, access_type::load);
  }
}

void memory_hierarchy::reset() noexcept {
  l1d_.reset();
  l1i_.reset();
  llc_.reset();
  prefetch_.reset();
}

}  // namespace advh::uarch
