// Adversarial attack interface.
//
// The paper's threat model gives the adversary white-box access, so all
// attacks here consume model gradients directly. Inputs and outputs are
// single examples (batch of one) in [0, 1].
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "nn/model.hpp"

namespace advh::attack {

enum class attack_goal {
  untargeted,  ///< push the prediction away from the true class
  targeted,    ///< pull the prediction towards `target_class`
};

struct attack_config {
  attack_goal goal = attack_goal::untargeted;
  /// Required for targeted attacks.
  std::size_t target_class = 0;
  /// L-infinity budget (FGSM/PGD); ignored by DeepFool.
  float epsilon = 0.1f;
  /// PGD: number of gradient steps.
  std::size_t steps = 10;
  /// PGD: per-step size; 0 means 2.5 * epsilon / steps.
  float step_size = 0.0f;
  /// DeepFool: maximum iterations.
  std::size_t max_iter = 30;
  /// DeepFool: overshoot factor applied to the minimal perturbation.
  float overshoot = 0.02f;
};

struct attack_result {
  tensor adversarial;      ///< perturbed example, clamped to [0, 1]
  std::size_t original_prediction = 0;
  std::size_t adversarial_prediction = 0;
  bool success = false;    ///< goal achieved (see attack::is_success)
  double l2_distortion = 0.0;
  double linf_distortion = 0.0;
};

class attack {
 public:
  virtual ~attack() = default;
  attack(const attack&) = delete;
  attack& operator=(const attack&) = delete;

  /// Perturbs one example (batch-of-one tensor in [0, 1]).
  /// `true_label` is the example's ground-truth class.
  virtual attack_result run(nn::model& m, const tensor& x,
                            std::size_t true_label) = 0;

  virtual std::string name() const = 0;
  const attack_config& config() const noexcept { return cfg_; }

 protected:
  explicit attack(attack_config cfg) : cfg_(std::move(cfg)) {}

  /// Success test: targeted => predicted == target; untargeted =>
  /// predicted != true label.
  bool is_success(std::size_t predicted, std::size_t true_label) const;

  /// Fills in distortions and prediction bookkeeping.
  attack_result finalize(nn::model& m, const tensor& original,
                         tensor adversarial, std::size_t original_pred,
                         std::size_t true_label) const;

  attack_config cfg_;
};

using attack_ptr = std::unique_ptr<attack>;

enum class attack_kind { fgsm, pgd, deepfool };

std::string to_string(attack_kind k);

/// Factory over the three attack families evaluated in the paper.
attack_ptr make_attack(attack_kind kind, const attack_config& cfg);

}  // namespace advh::attack
