#include "attack/attack.hpp"

#include "attack/deepfool.hpp"
#include "attack/fgsm.hpp"
#include "attack/pgd.hpp"
#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace advh::attack {

bool attack::is_success(std::size_t predicted, std::size_t true_label) const {
  if (cfg_.goal == attack_goal::targeted) {
    return predicted == cfg_.target_class;
  }
  return predicted != true_label;
}

attack_result attack::finalize(nn::model& m, const tensor& original,
                               tensor adversarial, std::size_t original_pred,
                               std::size_t true_label) const {
  attack_result r;
  r.original_prediction = original_pred;
  const tensor delta = ops::sub(adversarial, original);
  r.l2_distortion = ops::l2_norm(delta);
  r.linf_distortion = ops::linf_norm(delta);
  r.adversarial_prediction = m.predict_one(adversarial);
  r.success = is_success(r.adversarial_prediction, true_label);
  r.adversarial = std::move(adversarial);
  return r;
}

std::string to_string(attack_kind k) {
  switch (k) {
    case attack_kind::fgsm:
      return "FGSM";
    case attack_kind::pgd:
      return "PGD";
    case attack_kind::deepfool:
      return "DeepFool";
  }
  return "?";
}

attack_ptr make_attack(attack_kind kind, const attack_config& cfg) {
  switch (kind) {
    case attack_kind::fgsm:
      return std::make_unique<fgsm>(cfg);
    case attack_kind::pgd:
      return std::make_unique<pgd>(cfg);
    case attack_kind::deepfool:
      return std::make_unique<deepfool>(cfg);
  }
  throw invariant_error("unknown attack kind");
}

}  // namespace advh::attack
