#include "attack/deepfool.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace advh::attack {

namespace {

/// Gradient of logit `cls` w.r.t. the input of the *cached* forward pass.
tensor logit_gradient(nn::model& m, const tensor& logits, std::size_t cls) {
  tensor one_hot(logits.dims());
  one_hot[cls] = 1.0f;
  return m.backward(one_hot);
}

}  // namespace

attack_result deepfool::run(nn::model& m, const tensor& x,
                            std::size_t true_label) {
  ADVH_CHECK(x.dims().rank() == 4 && x.dims()[0] == 1);
  const std::size_t classes = m.num_classes();

  std::size_t original_pred = m.predict_one(x);
  tensor adv = x;
  tensor total_r(x.dims());

  for (std::size_t iter = 0; iter < cfg_.max_iter; ++iter) {
    nn::forward_ctx ctx;
    m.zero_grad();
    tensor logits = m.forward(adv, ctx);
    const std::size_t current = ops::argmax(logits);

    const bool done = cfg_.goal == attack_goal::targeted
                          ? current == cfg_.target_class
                          : current != original_pred;
    if (done) break;

    tensor grad_current = logit_gradient(m, logits, current);

    // Candidate decision boundaries to consider this iteration.
    std::vector<std::size_t> candidates;
    if (cfg_.goal == attack_goal::targeted) {
      candidates.push_back(cfg_.target_class);
    } else {
      std::vector<std::size_t> order(classes);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return logits[a] > logits[b];
      });
      for (std::size_t c : order) {
        if (c == current) continue;
        candidates.push_back(c);
        if (candidates.size() >= kMaxCandidates) break;
      }
    }

    double best_ratio = 0.0;
    tensor best_w;
    double best_f = 0.0;
    bool found = false;
    for (std::size_t cls : candidates) {
      tensor w = ops::sub(logit_gradient(m, logits, cls), grad_current);
      const double f =
          static_cast<double>(logits[cls]) - static_cast<double>(logits[current]);
      const double wnorm = ops::l2_norm(w);
      if (wnorm < 1e-12) continue;
      const double ratio = std::fabs(f) / wnorm;
      if (!found || ratio < best_ratio) {
        found = true;
        best_ratio = ratio;
        best_w = std::move(w);
        best_f = f;
      }
    }
    if (!found) break;  // degenerate gradients; cannot make progress

    // Minimal step to the linearised boundary, with a small overshoot so
    // the iterate actually crosses it.
    const double wnorm2 = ops::dot(best_w, best_w);
    const double scale = (std::fabs(best_f) + 1e-6) / std::max(wnorm2, 1e-12);
    tensor r = ops::scale(best_w, static_cast<float>(scale));
    ops::axpy(total_r, r, 1.0f);

    adv = ops::add(x, ops::scale(total_r, 1.0f + cfg_.overshoot));
    ops::clamp_inplace(adv, 0.0f, 1.0f);
  }

  return finalize(m, x, std::move(adv), original_pred, true_label);
}

}  // namespace advh::attack
