// Fast Gradient Sign Method (Goodfellow et al., ICLR 2015), L-infinity.
//
// Untargeted: x' = clip(x + eps * sign(d L(x, y_true) / d x)).
// Targeted:   x' = clip(x - eps * sign(d L(x, y_target) / d x)).
#pragma once

#include "attack/attack.hpp"

namespace advh::attack {

class fgsm final : public attack {
 public:
  explicit fgsm(attack_config cfg) : attack(std::move(cfg)) {}

  attack_result run(nn::model& m, const tensor& x,
                    std::size_t true_label) override;

  std::string name() const override { return "FGSM"; }
};

/// Computes d cross_entropy(logits, label) / d input for one example.
/// Shared by FGSM and PGD. Also returns the clean prediction.
tensor input_gradient(nn::model& m, const tensor& x, std::size_t label,
                      std::size_t& predicted);

}  // namespace advh::attack
