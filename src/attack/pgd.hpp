// Projected Gradient Descent, L-infinity (the iterated FGSM of Madry et
// al.; the paper cites the momentum variant of Dong et al., CVPR 2018 —
// we implement momentum-accelerated iterates accordingly).
#pragma once

#include "attack/attack.hpp"

namespace advh::attack {

class pgd final : public attack {
 public:
  explicit pgd(attack_config cfg) : attack(std::move(cfg)) {}

  attack_result run(nn::model& m, const tensor& x,
                    std::size_t true_label) override;

  std::string name() const override { return "PGD"; }
};

}  // namespace advh::attack
