#include "attack/pgd.hpp"

#include <cmath>

#include "attack/fgsm.hpp"
#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace advh::attack {

attack_result pgd::run(nn::model& m, const tensor& x, std::size_t true_label) {
  ADVH_CHECK(cfg_.epsilon >= 0.0f && cfg_.steps > 0);
  const float alpha = cfg_.step_size > 0.0f
                          ? cfg_.step_size
                          : 2.5f * cfg_.epsilon /
                                static_cast<float>(cfg_.steps);
  const bool targeted = cfg_.goal == attack_goal::targeted;
  const std::size_t loss_label = targeted ? cfg_.target_class : true_label;
  const float direction = targeted ? -1.0f : 1.0f;

  std::size_t original_pred = m.predict_one(x);
  tensor adv = x;
  tensor momentum(x.dims());
  constexpr float kDecay = 1.0f;  // MI-FGSM decay factor mu

  for (std::size_t step = 0; step < cfg_.steps; ++step) {
    std::size_t pred_now = 0;
    tensor g = input_gradient(m, adv, loss_label, pred_now);
    // Momentum accumulation with L1 normalisation (Dong et al. 2018).
    const double l1 = [&] {
      double acc = 0.0;
      for (float v : g.data()) acc += std::fabs(v);
      return std::max(acc, 1e-12);
    }();
    auto mo = momentum.data();
    auto gg = g.data();
    for (std::size_t i = 0; i < mo.size(); ++i) {
      mo[i] = kDecay * mo[i] + static_cast<float>(gg[i] / l1);
    }
    adv = ops::add(adv, ops::scale(ops::sign(momentum), direction * alpha));
    adv = ops::project_linf(adv, x, cfg_.epsilon);
    ops::clamp_inplace(adv, 0.0f, 1.0f);
  }
  return finalize(m, x, std::move(adv), original_pred, true_label);
}

}  // namespace advh::attack
