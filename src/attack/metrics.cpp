#include "attack/metrics.hpp"

#include <numeric>

#include "common/error.hpp"
#include "nn/trainer.hpp"

namespace advh::attack {

batch_attack_output attack_batch(nn::model& m, attack& atk,
                                 const data::dataset& d,
                                 const std::vector<std::size_t>& indices) {
  std::vector<std::size_t> idx = indices;
  if (idx.empty()) {
    idx.resize(d.size());
    std::iota(idx.begin(), idx.end(), 0);
  }

  batch_attack_output out;
  const bool targeted = atk.config().goal == attack_goal::targeted;
  std::size_t true_hits = 0;
  std::size_t target_hits = 0;
  double l2_sum = 0.0, linf_sum = 0.0;

  for (std::size_t i : idx) {
    ADVH_CHECK(i < d.size());
    if (targeted && d.labels[i] == atk.config().target_class) continue;
    tensor x = nn::single_example(d.images, i);
    attack_result r = atk.run(m, x, d.labels[i]);
    ++out.stats.attempted;
    if (r.success) ++out.stats.succeeded;
    if (r.adversarial_prediction == d.labels[i]) ++true_hits;
    if (targeted && r.adversarial_prediction == atk.config().target_class) {
      ++target_hits;
    }
    l2_sum += r.l2_distortion;
    linf_sum += r.linf_distortion;
    out.results.push_back(std::move(r));
    out.source_indices.push_back(i);
  }

  if (out.stats.attempted > 0) {
    const auto n = static_cast<double>(out.stats.attempted);
    out.stats.mean_l2 = l2_sum / n;
    out.stats.mean_linf = linf_sum / n;
    out.stats.model_accuracy_under_attack = static_cast<double>(true_hits) / n;
    out.stats.targeted_accuracy = static_cast<double>(target_hits) / n;
  }
  return out;
}

}  // namespace advh::attack
