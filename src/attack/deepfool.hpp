// DeepFool (Moosavi-Dezfooli et al., CVPR 2016), minimal-L2 attack.
//
// Iteratively linearises the classifier around the current iterate and
// steps to the nearest face of the (linearised) decision boundary. The
// targeted variant steps towards the hyperplane separating the current
// class from the requested target class.
#pragma once

#include "attack/attack.hpp"

namespace advh::attack {

class deepfool final : public attack {
 public:
  explicit deepfool(attack_config cfg) : attack(std::move(cfg)) {}

  attack_result run(nn::model& m, const tensor& x,
                    std::size_t true_label) override;

  std::string name() const override { return "DeepFool"; }

 private:
  /// Candidate classes examined per iteration for the untargeted variant
  /// (top logits); bounds cost on many-class datasets such as GTSRB.
  static constexpr std::size_t kMaxCandidates = 10;
};

}  // namespace advh::attack
