#include "attack/min_eps.hpp"

#include "common/error.hpp"

namespace advh::attack {

namespace {

attack_result run_at(nn::model& m, const tensor& x, std::size_t true_label,
                     const min_eps_config& cfg, float eps) {
  attack_config acfg;
  acfg.goal = cfg.goal;
  acfg.target_class = cfg.target_class;
  acfg.epsilon = eps;
  acfg.steps = cfg.pgd_steps;
  auto atk = make_attack(cfg.kind, acfg);
  return atk->run(m, x, true_label);
}

}  // namespace

min_eps_result find_minimal_epsilon(nn::model& m, const tensor& x,
                                    std::size_t true_label,
                                    const min_eps_config& cfg) {
  ADVH_CHECK(cfg.eps_hi > cfg.eps_lo);
  ADVH_CHECK(cfg.tolerance > 0.0f);
  ADVH_CHECK_MSG(cfg.kind != attack_kind::deepfool,
                 "DeepFool already minimises distortion; bisection applies "
                 "to epsilon-parameterised attacks");

  min_eps_result out;

  // Find a successful upper bound.
  float hi = cfg.eps_hi;
  attack_result at_hi;
  bool hi_ok = false;
  for (std::size_t d = 0; d <= cfg.max_doublings; ++d) {
    at_hi = run_at(m, x, true_label, cfg, hi);
    if (at_hi.success) {
      hi_ok = true;
      break;
    }
    hi *= 2.0f;
  }
  if (!hi_ok) return out;  // attack cannot succeed within budget

  float lo = cfg.eps_lo;
  out.result = at_hi;
  out.epsilon = hi;
  out.found = true;
  while (hi - lo > cfg.tolerance) {
    const float mid = 0.5f * (lo + hi);
    auto r = run_at(m, x, true_label, cfg, mid);
    if (r.success) {
      hi = mid;
      out.result = std::move(r);
      out.epsilon = mid;
    } else {
      lo = mid;
    }
  }
  return out;
}

}  // namespace advh::attack
