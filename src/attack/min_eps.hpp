// Detection-aware adversary: minimal-strength attack search.
//
// An attacker who knows a side-channel detector is watching wants the
// *smallest* perturbation that still flips the model, since the HPC
// disturbance grows with the activation disturbance. This wraps any
// epsilon-parameterised attack in a bisection over epsilon and returns the
// weakest successful adversarial example. bench_ext_adaptive evaluates
// AdvHunter against it.
#pragma once

#include "attack/attack.hpp"

namespace advh::attack {

struct min_eps_config {
  attack_kind kind = attack_kind::pgd;
  attack_goal goal = attack_goal::untargeted;
  std::size_t target_class = 0;
  float eps_lo = 0.0f;     ///< known-failing strength
  float eps_hi = 0.3f;     ///< initial upper bound (doubled if it fails)
  float tolerance = 0.005f;  ///< bisection stop width
  std::size_t max_doublings = 3;
  std::size_t pgd_steps = 10;
};

struct min_eps_result {
  attack_result result;    ///< attack at the minimal successful epsilon
  float epsilon = 0.0f;
  bool found = false;
};

/// Bisects epsilon for one example. Deterministic given the model.
min_eps_result find_minimal_epsilon(nn::model& m, const tensor& x,
                                    std::size_t true_label,
                                    const min_eps_config& cfg);

}  // namespace advh::attack
