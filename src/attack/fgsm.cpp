#include "attack/fgsm.hpp"

#include "common/error.hpp"
#include "nn/loss.hpp"
#include "tensor/ops.hpp"

namespace advh::attack {

tensor input_gradient(nn::model& m, const tensor& x, std::size_t label,
                      std::size_t& predicted) {
  ADVH_CHECK(x.dims().rank() == 4 && x.dims()[0] == 1);
  m.zero_grad();
  nn::forward_ctx ctx;  // inference mode: frozen batch-norm statistics
  tensor logits = m.forward(x, ctx);
  predicted = ops::argmax(logits);
  tensor grad_logits = nn::nll_grad_single(logits, label);
  return m.backward(grad_logits);
}

attack_result fgsm::run(nn::model& m, const tensor& x,
                        std::size_t true_label) {
  ADVH_CHECK(cfg_.epsilon >= 0.0f);
  std::size_t original_pred = 0;

  tensor adv;
  if (cfg_.goal == attack_goal::targeted) {
    // Descend the loss towards the target class.
    tensor g = input_gradient(m, x, cfg_.target_class, original_pred);
    adv = ops::add(x, ops::scale(ops::sign(g), -cfg_.epsilon));
  } else {
    // Ascend the loss w.r.t. the true class.
    tensor g = input_gradient(m, x, true_label, original_pred);
    adv = ops::add(x, ops::scale(ops::sign(g), cfg_.epsilon));
  }
  ops::clamp_inplace(adv, 0.0f, 1.0f);
  return finalize(m, x, std::move(adv), original_pred, true_label);
}

}  // namespace advh::attack
