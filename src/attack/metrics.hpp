// Batch attack evaluation: runs an attack over many examples and reports
// the aggregate statistics the paper's Figure 4 x-axis labels carry
// (untargeted model accuracy under attack / targeted attack accuracy).
#pragma once

#include <vector>

#include "attack/attack.hpp"
#include "data/dataset.hpp"

namespace advh::attack {

struct batch_attack_stats {
  std::size_t attempted = 0;
  std::size_t succeeded = 0;
  double mean_l2 = 0.0;
  double mean_linf = 0.0;
  /// Untargeted: model accuracy on perturbed inputs (w.r.t. true labels).
  double model_accuracy_under_attack = 0.0;
  /// Targeted: fraction of perturbed inputs predicted as the target class.
  double targeted_accuracy = 0.0;
};

struct batch_attack_output {
  batch_attack_stats stats;
  std::vector<attack_result> results;  ///< one per attempted example
  std::vector<std::size_t> source_indices;  ///< dataset index per result
};

/// Attacks every example of `d` whose index is in `indices` (all if empty).
/// For targeted attacks, examples already belonging to the target class are
/// skipped (matching the paper's evaluation protocol).
batch_attack_output attack_batch(nn::model& m, attack& atk, const data::dataset& d,
                                 const std::vector<std::size_t>& indices = {});

}  // namespace advh::attack
