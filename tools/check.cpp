// advh_check — static-analysis front end for every AdvHunter artifact.
//
//   advh_check <target> [<target>...] [--json] [--model <name|state-file>]
//              [--input CxHxW] [--classes N] [--seed S]
//
// Each target is resolved by content, not extension:
//   * a known model name (case_study_cnn, efficientnet_lite, resnet_small,
//     densenet_small) or an nn state file — model-graph passes (ADVH-x1xx);
//   * an ADET detector/checkpoint file (magic sniffed) — the detector-file
//     linter (ADVH-x2xx), the detector-policy pass (ADVH-x4xx) and, when
//     --model names the victim model, the HPC envelope pass (ADVH-x3xx);
//   * anything else readable — parsed as a serve config (key = value) and
//     run through the serve-policy pass (ADVH-x4xx) against the detector
//     loaded from --detector (or the default detector config).
//
// Exit status, over all targets: 0 clean, 1 warnings only, 2 errors,
// 64 usage. These are the same codes advh_lint reports, and the same
// ADVH-Exxx identifiers the runtime choke points (load_detector,
// detector::fit, detection_service construction) embed in their errors.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/check.hpp"
#include "analysis/envelope_pass.hpp"
#include "analysis/policy_pass.hpp"
#include "analysis/verifier.hpp"
#include "common/cli.hpp"
#include "core/detector_io.hpp"
#include "nn/models/models.hpp"
#include "nn/serialize.hpp"
#include "serve/service.hpp"

using namespace advh;

namespace {

struct arch_defaults {
  shape input;
  std::size_t classes;
};

// Scenario-matched defaults (src/data/scenarios): the shapes each factory
// architecture is trained with.
arch_defaults defaults_for(nn::architecture a) {
  switch (a) {
    case nn::architecture::efficientnet_lite:
      return {shape{1, 28, 28}, 10};
    case nn::architecture::densenet_small:
      return {shape{3, 32, 32}, 43};
    case nn::architecture::case_study_cnn:
    case nn::architecture::resnet_small:
      return {shape{3, 32, 32}, 10};
  }
  return {shape{3, 32, 32}, 10};
}

bool arch_from_filename(const std::string& path, nn::architecture& out) {
  for (nn::architecture a :
       {nn::architecture::case_study_cnn, nn::architecture::efficientnet_lite,
        nn::architecture::resnet_small, nn::architecture::densenet_small}) {
    if (path.find(nn::to_string(a)) != std::string::npos) {
      out = a;
      return true;
    }
  }
  return false;
}

bool parse_chw(const std::string& s, shape& out) {
  std::size_t c = 0, h = 0, w = 0;
  char x1 = 0, x2 = 0;
  if (std::sscanf(s.c_str(), "%zu%c%zu%c%zu", &c, &x1, &h, &x2, &w) != 5 ||
      x1 != 'x' || x2 != 'x' || c == 0 || h == 0 || w == 0) {
    return false;
  }
  out = shape{c, h, w};
  return true;
}

bool is_model_name(const std::string& s) {
  try {
    (void)nn::architecture_from_string(s);
    return true;
  } catch (const advh::error&) {
    return false;
  }
}

/// ADET files are sniffed by magic; the .adet extension also routes to
/// the detector linter so a corrupted header is reported as ADVH-E201,
/// not misparsed as a serve config.
bool is_adet_target(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (is.good() && magic == 0x41444554u) return true;
  const std::string ext = ".adet";
  return path.size() >= ext.size() &&
         path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

bool file_readable(const std::string& path) {
  return std::ifstream(path).good();
}

struct cli_options {
  bool json = false;
  std::string model;  ///< victim model for the envelope pass
  std::string input;
  std::size_t classes = 0;
  std::uint64_t seed = 1234;
};

std::unique_ptr<nn::model> build_model(const std::string& target,
                                       const cli_options& opt,
                                       std::string& err) {
  nn::architecture arch;
  const bool is_file = !is_model_name(target) && nn::is_state_file(target);
  if (is_file) {
    if (!arch_from_filename(target, arch)) {
      err = "cannot infer architecture from file name '" + target + "'";
      return nullptr;
    }
  } else if (is_model_name(target)) {
    arch = nn::architecture_from_string(target);
  } else {
    err = "'" + target + "' is neither a known model name nor a state file";
    return nullptr;
  }
  arch_defaults d = defaults_for(arch);
  if (!opt.input.empty() && !parse_chw(opt.input, d.input)) {
    err = "--input must look like 3x32x32";
    return nullptr;
  }
  if (opt.classes > 0) d.classes = opt.classes;
  auto m = nn::make_model(arch, d.input, d.classes, opt.seed);
  // The checker owns the verdict: load without the throw-on-error gate,
  // the graph pass reports every diagnostic itself.
  if (is_file) nn::load_state(*m, target, /*verify=*/false);
  return m;
}

/// Model-graph passes (1xx): structural/shape/param/trace diagnostics of
/// the verifier, re-expressed as coded findings.
void check_model_target(const std::string& target, const cli_options& opt,
                        analysis::check_report& rep) {
  rep.target = target;
  std::string err;
  auto m = build_model(target, opt, err);
  if (!m) {
    rep.add(analysis::severity::error, 2, "target", err);
    return;
  }
  analysis::append_graph_findings(analysis::verify_model(*m), rep);
}

/// Detector-file passes: the 2xx linter, the 4xx detector-policy pass
/// over the stored config and (when --model is given) the 3xx envelope
/// cross-check of every fitted cell.
void check_detector_target(const std::string& target, const cli_options& opt,
                           analysis::check_report& rep) {
  const auto ckpt = core::lint_checkpoint_file(target, rep);
  if (!ckpt.has_value()) return;  // findings already recorded
  analysis::check_detector_policy(ckpt->det.config(), rep);
  if (opt.model.empty()) return;
  std::string err;
  auto m = build_model(opt.model, opt, err);
  if (!m) {
    rep.add(analysis::severity::error, 2, "--model", err);
    return;
  }
  analysis::check_envelope(*m, ckpt->det, analysis::envelope_options{}, rep);
}

/// Serve-config pass: parse, then verify the degradation ladder against
/// the detector policy it will serve (default detector config unless the
/// same invocation also checks an ADET file — configs are checked
/// standalone here; pair them in code via check_serve_policy).
void check_serve_target(const std::string& target,
                        analysis::check_report& rep) {
  rep.target = target;
  serve::serve_config cfg;
  try {
    cfg = serve::load_serve_config(target);
  } catch (const advh::io_error& e) {
    rep.add(analysis::severity::error, 2, "target", e.what());
    return;
  }
  analysis::check_serve_policy(cfg, core::detector_config{}, rep);
}

int usage(const std::string& help) {
  std::cerr << "usage: advh_check <target> [<target>...] [flags]\n"
            << "  targets: model name | nn state file | ADET detector file "
               "| serve config\n"
            << help;
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  cli_parser cli("advh_check", "static analysis for AdvHunter artifacts");
  cli.add_flag("json", "false", "emit reports as a JSON array");
  cli.add_flag("model", "",
               "victim model (name or state file) for the envelope pass");
  cli.add_flag("input", "", "input shape CxHxW (default: per-architecture)");
  cli.add_flag("classes", "0", "logit width (default: per-architecture)");
  cli.add_flag("seed", "1234", "weight-init seed for factory models");

  std::vector<std::string> targets;
  std::vector<const char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      if (std::strcmp(argv[i], "--help") == 0) {
        std::cerr << cli.help();
        return 0;
      }
      rest.push_back(argv[i]);
      // A flag other than --json consumes the following value token.
      if (std::strcmp(argv[i], "--json") != 0 && i + 1 < argc) {
        rest.push_back(argv[++i]);
      }
    } else {
      targets.emplace_back(argv[i]);
    }
  }
  if (targets.empty()) return usage(cli.help());
  try {
    if (!cli.parse(static_cast<int>(rest.size()), rest.data())) return 0;
  } catch (const advh::error& e) {
    std::cerr << "advh_check: " << e.what() << "\n";
    return 64;
  }

  cli_options opt;
  opt.json = cli.get_bool("json");
  opt.model = cli.get("model");
  opt.input = cli.get("input");
  opt.classes = static_cast<std::size_t>(cli.get_int("classes"));
  opt.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  int worst = 0;
  std::string json_out = "[";
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const std::string& target = targets[t];
    analysis::check_report rep;
    rep.target = target;
    try {
      if (is_model_name(target)) {
        check_model_target(target, opt, rep);
      } else if (!file_readable(target)) {
        rep.add(analysis::severity::error, 1, "target",
                "cannot open target for reading");
      } else if (is_adet_target(target)) {
        check_detector_target(target, opt, rep);
      } else if (nn::is_state_file(target)) {
        check_model_target(target, opt, rep);
      } else {
        check_serve_target(target, rep);
      }
    } catch (const advh::error& e) {
      // A pass died on something the linter did not classify: still a
      // finding, never a silent crash.
      rep.add(analysis::severity::error, 2, "target", e.what());
    }
    worst = std::max(worst, rep.exit_code());
    if (opt.json) {
      json_out += (t ? "," : "") + std::string("\n") + rep.to_json();
    } else {
      std::cout << rep.to_text();
    }
  }
  if (opt.json) std::cout << json_out << "\n]\n";
  return worst;
}
