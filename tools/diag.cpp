// Developer diagnostic: prints noise-free simulated event profiles for
// clean per-class images and adversarial examples, to inspect separability
// of each HPC event before GMM modelling.
#include <iostream>
#include <set>
#include <algorithm>

#include "attack/metrics.hpp"
#include "common/stats.hpp"
#include "core/pipeline.hpp"
#include "hpc/sim_backend.hpp"
#include "nn/trainer.hpp"

using namespace advh;

int main() {
  core::scenario_runtime rt = core::prepare_scenario(data::scenario_id::s2);
  hpc::sim_backend mon(*rt.net, {}, hpc::noise_model::none());

  const std::size_t target = rt.spec.target_class;
  const auto events = hpc::all_events();

  auto print_group = [&](const std::string& label,
                         const std::vector<tensor>& inputs) {
    std::vector<stats::running_stats> acc(events.size());
    for (const auto& x : inputs) {
      std::size_t pred = 0;
      const auto c = mon.profile(x, pred);
      for (std::size_t e = 0; e < events.size(); ++e) {
        acc[e].push(static_cast<double>(hpc::extract(c, events[e])));
      }
    }
    std::cout << label << " (" << inputs.size() << " inputs)\n";
    for (std::size_t e = 0; e < events.size(); ++e) {
      std::cout << "  " << to_string(events[e]) << ": mean " << acc[e].mean()
                << " sd " << acc[e].stddev() << " min " << acc[e].min()
                << " max " << acc[e].max() << "\n";
    }
  };

  // Clean 'frog' test images.
  std::vector<tensor> clean;
  for (std::size_t i = 0; i < rt.test.size() && clean.size() < 40; ++i) {
    if (rt.test.labels[i] == target &&
        rt.net->predict_one(nn::single_example(rt.test.images, i)) == target) {
      clean.push_back(nn::single_example(rt.test.images, i));
    }
  }
  print_group("clean frog", clean);

  // Clean images of another class for contrast.
  std::vector<tensor> other;
  for (std::size_t i = 0; i < rt.test.size() && other.size() < 40; ++i) {
    if (rt.test.labels[i] == 0) {
      other.push_back(nn::single_example(rt.test.images, i));
    }
  }
  print_group("clean airplane", other);

  // Targeted FGSM AEs predicted as 'frog'.
  attack::attack_config acfg;
  acfg.goal = attack::attack_goal::targeted;
  acfg.target_class = target;
  acfg.epsilon = 0.5f;
  auto atk = attack::make_attack(attack::attack_kind::fgsm, acfg);
  std::vector<tensor> adv;
  for (std::size_t i = 0; i < rt.test.size() && adv.size() < 40; ++i) {
    if (rt.test.labels[i] == target) continue;
    auto r = atk->run(*rt.net, nn::single_example(rt.test.images, i),
                      rt.test.labels[i]);
    if (r.success) adv.push_back(std::move(r.adversarial));
  }
  print_group("FGSM-targeted AEs", adv);

  // Per-layer active-unit statistics at (channel, spatial-block)
  // granularity — the units the trace generator's gather operates on.
  auto layer_unit_stats = [&](const std::vector<tensor>& inputs,
                              const std::string& label) {
    std::vector<stats::running_stats> per_layer;
    std::vector<std::string> names;
    for (const auto& x : inputs) {
      std::size_t pred = 0;
      auto tr = rt.net->trace_inference(x, pred);
      std::size_t li = 0;
      for (const auto& e : tr.layers) {
        if (e.active_inputs.empty()) continue;
        const std::size_t spatial = std::max<std::size_t>(e.in_spatial, 1);
        std::set<std::uint64_t> units;
        for (std::uint32_t i : e.active_inputs) {
          const std::size_t c = i / spatial;
          const std::size_t b = (i % spatial) / 4;
          units.insert((static_cast<std::uint64_t>(c) << 32) | b);
        }
        if (li >= per_layer.size()) {
          per_layer.emplace_back();
          names.push_back(e.name);
        }
        per_layer[li].push(static_cast<double>(units.size()));
        ++li;
      }
    }
    std::cout << label << " per-layer active (channel,block) units:\n";
    for (std::size_t l = 0; l < per_layer.size(); ++l) {
      std::cout << "  " << names[l] << ": mean " << per_layer[l].mean()
                << " sd " << per_layer[l].stddev() << " range ["
                << per_layer[l].min() << ", " << per_layer[l].max() << "]\n";
    }
  };
  layer_unit_stats(clean, "clean frog");
  layer_unit_stats(adv, "AEs");

  auto dump_sorted = [&](const std::vector<tensor>& inputs,
                         const std::string& label) {
    std::vector<double> vals;
    for (const auto& x : inputs) {
      std::size_t pred = 0;
      const auto c = mon.profile(x, pred);
      vals.push_back(static_cast<double>(c.cache_misses));
    }
    std::sort(vals.begin(), vals.end());
    std::cout << label << " cache-misses sorted:";
    for (double v : vals) std::cout << " " << v;
    std::cout << "\n";
  };
  dump_sorted(clean, "clean frog");
  dump_sorted(adv, "AE");

  // Set-distance analysis: Hamming distance between active-unit sets,
  // within clean frog vs AE-to-clean-frog, per layer. This bounds how
  // separable ANY footprint statistic can be.
  auto unit_sets = [&](const tensor& x) {
    std::size_t pred = 0;
    auto tr = rt.net->trace_inference(x, pred);
    std::vector<std::set<std::uint64_t>> sets;
    for (const auto& e : tr.layers) {
      if (e.active_inputs.empty()) continue;
      const std::size_t spatial = std::max<std::size_t>(e.in_spatial, 1);
      std::set<std::uint64_t> units;
      for (std::uint32_t i : e.active_inputs) {
        units.insert((static_cast<std::uint64_t>(i / spatial) << 32) |
                     ((i % spatial) / 4));
      }
      sets.push_back(std::move(units));
    }
    return sets;
  };
  // Attack-success sweep.
  for (auto kind : {attack::attack_kind::fgsm, attack::attack_kind::pgd,
                    attack::attack_kind::deepfool}) {
    for (bool targeted : {false, true}) {
      for (float eps : {0.05f, 0.1f, 0.3f, 0.5f}) {
        if (kind == attack::attack_kind::deepfool && eps != 0.05f) continue;
        attack::attack_config cfg;
        cfg.goal = targeted ? attack::attack_goal::targeted
                            : attack::attack_goal::untargeted;
        cfg.target_class = target;
        cfg.epsilon = eps;
        auto a = attack::make_attack(kind, cfg);
        std::size_t ok = 0, n = 0;
        for (std::size_t i = 0; i < rt.test.size() && n < 50; i += 7) {
          if (targeted && rt.test.labels[i] == target) continue;
          auto r = a->run(*rt.net, nn::single_example(rt.test.images, i),
                          rt.test.labels[i]);
          ++n;
          if (r.success) ++ok;
        }
        std::cout << "attack " << to_string(kind)
                  << (targeted ? " targeted" : " untargeted") << " eps " << eps
                  << ": " << ok << "/" << n << "\n";
      }
    }
  }

  std::vector<std::vector<std::set<std::uint64_t>>> clean_sets, adv_sets;
  for (std::size_t i = 0; i < std::min<std::size_t>(clean.size(), 15); ++i)
    clean_sets.push_back(unit_sets(clean[i]));
  for (std::size_t i = 0; i < std::min<std::size_t>(adv.size(), 15); ++i)
    adv_sets.push_back(unit_sets(adv[i]));

  const std::size_t layers = clean_sets[0].size();
  for (std::size_t l = 0; l < layers; ++l) {
    stats::running_stats within, between;
    auto hamming = [&](const std::set<std::uint64_t>& a,
                       const std::set<std::uint64_t>& b) {
      std::size_t inter = 0;
      for (auto u : a) inter += b.count(u);
      return static_cast<double>(a.size() + b.size() - 2 * inter);
    };
    for (std::size_t i = 0; i < clean_sets.size(); ++i)
      for (std::size_t j = i + 1; j < clean_sets.size(); ++j)
        within.push(hamming(clean_sets[i][l], clean_sets[j][l]));
    for (const auto& a : adv_sets)
      for (const auto& c : clean_sets) between.push(hamming(a[l], c[l]));
    std::cout << "layer " << l << ": hamming clean-clean " << within.mean()
              << " AE-clean " << between.mean() << " ratio "
              << (within.mean() > 0 ? between.mean() / within.mean() : 0.0)
              << "\n";
  }
  return 0;
}
