// make_check_corpus — regenerates the corrupted-artifact corpus under
// tests/data/ that tests/test_check.cpp and the CI static-analysis job
// assert golden diagnostic codes against.
//
//   make_check_corpus <output-dir>
//
// Every ADET file is written byte-by-byte (not through detector_io's
// writer) so each artifact carries exactly one seeded defect class and
// the corpus cannot silently heal when the writer changes. The baseline
// cell is constructed to be clean under the linter: threshold ==
// nll_mean + sigma * nll_stddev exactly, weights summing to 1, variance
// well above the numerical floor.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace {

struct blob {
  std::vector<char> bytes;

  template <typename T>
  void pod(const T& v) {
    const char* p = reinterpret_cast<const char*>(&v);
    bytes.insert(bytes.end(), p, p + sizeof(T));
  }
  void u8(std::uint8_t v) { pod(v); }
  void u32(std::uint32_t v) { pod(v); }
  void u64(std::uint64_t v) { pod(v); }
  void f64(double v) { pod(v); }
};

constexpr std::uint32_t kMagic = 0x41444554;  // "ADET"
constexpr std::uint32_t kVersion = 4;

/// ADET v4 header + config for one class over `events`, followed by one
/// clean modelled cell per event (order-1 mixture, exact sigma rule).
blob clean_detector(const std::vector<std::uint32_t>& events) {
  blob b;
  b.u32(kMagic);
  b.u32(kVersion);
  b.u64(events.size());
  for (std::uint32_t e : events) b.u32(e);
  b.u64(10);   // repeats
  b.u64(4);    // k_max
  b.f64(3.0);  // sigma_multiplier
  b.u8(1);     // flag_unmodeled
  b.u64(1);    // min_events_for_verdict
  b.u8(1);     // flag_on_abstain
  b.u64(1);    // n_classes
  for (std::size_t e = 0; e < events.size(); ++e) {
    b.u8(1);       // cell present
    b.f64(13.0);   // threshold == 10 + 3 * 1 exactly (no W238)
    b.f64(10.0);   // nll_mean
    b.f64(1.0);    // nll_stddev
    b.u64(32);     // template_size
    b.u64(1);      // mixture order
    b.f64(1.0);    // weight
    b.f64(50000.0);
    b.f64(2500.0);  // variance, far above the 1e-12 * mean^2 floor
  }
  return b;
}

void write_file(const std::string& dir, const std::string& name,
                const blob& b) {
  const std::string path = dir + "/" + name;
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(b.bytes.data(), static_cast<std::streamsize>(b.bytes.size()));
  if (!os.good()) {
    std::cerr << "make_check_corpus: cannot write " << path << "\n";
    std::exit(1);
  }
  std::cout << "wrote " << path << " (" << b.bytes.size() << " bytes)\n";
}

/// A structurally sane drift policy (passes detector_io's consistency
/// predicate) for the quarantine-coherence artifacts.
void emit_drift_policy(blob& b) {
  b.f64(8.0);   // z_clamp
  b.f64(0.5);   // cusum_slack
  b.f64(3.0);   // cusum_warn
  b.f64(6.0);   // cusum_alarm
  b.f64(0.05);  // ph_delta
  b.f64(8.0);   // ph_warn
  b.f64(15.0);  // ph_alarm
  b.u64(64);    // ks_window
  b.u64(16);    // ks_min_samples
  b.f64(0.1);   // ks_warn
  b.f64(0.2);   // ks_alarm
  b.u64(128);   // reservoir_capacity
  b.u64(32);    // min_refit_rows
  b.u64(10);    // burn_in
}

void emit_drift_cell(blob& b, std::uint8_t quarantined) {
  for (int i = 0; i < 8; ++i) b.f64(0.0);  // offsets/CUSUM/Page-Hinkley
  b.u64(5);  // samples
  b.u8(quarantined);
  b.u64(0);  // empty window
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: make_check_corpus <output-dir>\n";
    return 64;
  }
  const std::string dir = argv[1];
  const std::uint32_t kInstructions = 0;  // hpc_event::instructions
  const std::uint32_t kBranches = 1;      // hpc_event::branches

  // --- E201: not an ADET file at all -------------------------------------
  {
    blob b;
    b.u32(0xDEADBEEFu);
    b.u64(0);
    write_file(dir, "bad_magic.adet", b);
  }

  // --- E231: component weights do not sum to 1 ---------------------------
  {
    blob b;
    b.u32(kMagic);
    b.u32(kVersion);
    b.u64(1);
    b.u32(kInstructions);
    b.u64(10);
    b.u64(4);
    b.f64(3.0);
    b.u8(1);
    b.u64(1);
    b.u8(1);
    b.u64(1);
    b.u8(1);
    b.f64(13.0);
    b.f64(10.0);
    b.f64(1.0);
    b.u64(32);
    b.u64(2);  // two components, weights 0.3 + 0.3 = 0.6
    b.f64(0.3);
    b.f64(50000.0);
    b.f64(2500.0);
    b.f64(0.3);
    b.f64(52000.0);
    b.f64(2500.0);
    b.u8(0);  // no drift section
    write_file(dir, "bad_weights.adet", b);
  }

  // --- E233: non-positive component variance -----------------------------
  {
    blob b = clean_detector({kInstructions});
    // The clean cell's variance is the last 8 bytes before the (not yet
    // written) drift presence byte; rewrite it in place.
    const double neg = -1.0;
    const char* p = reinterpret_cast<const char*>(&neg);
    for (int i = 0; i < 8; ++i) b.bytes[b.bytes.size() - 8 + i] = p[i];
    b.u8(0);
    write_file(dir, "negative_variance.adet", b);
  }

  // --- E237: threshold tampered below the template's mean NLL ------------
  {
    blob b = clean_detector({kInstructions});
    // threshold is the first f64 of the cell: bytes [cell_start,
    // cell_start+8). Cell starts after header (4+4) + events (8+4) +
    // config (8+8+8+1+8+1) + classes (8) + presence byte (1).
    const std::size_t cell = 4 + 4 + 8 + 4 + 8 + 8 + 8 + 1 + 8 + 1 + 8 + 1;
    const double tampered = 5.0;  // below nll_mean = 10
    const char* p = reinterpret_cast<const char*>(&tampered);
    for (int i = 0; i < 8; ++i) b.bytes[cell + i] = p[i];
    b.u8(0);
    write_file(dir, "tampered_threshold.adet", b);
  }

  // --- E212: the same event configured twice -----------------------------
  {
    blob b = clean_detector({kInstructions, kInstructions});
    b.u8(0);
    write_file(dir, "dup_events.adet", b);
  }

  // --- E203: drift section truncated mid-policy --------------------------
  {
    blob b = clean_detector({kInstructions});
    b.u8(1);    // drift section present...
    b.f64(8.0);  // ...but only three of its policy doubles survive
    b.f64(0.5);
    b.f64(3.0);
    write_file(dir, "truncated_drift.adet", b);
  }

  // --- E246: quarantine flag on a victim-grid cell -----------------------
  {
    blob b = clean_detector({kInstructions});
    b.u8(1);
    emit_drift_policy(b);
    emit_drift_cell(b, 0);  // canary grid: clean
    emit_drift_cell(b, 1);  // victim grid: incoherently quarantined
    b.u64(0);               // empty reservoir pool
    for (int i = 0; i < 5; ++i) b.u64(0);  // counters
    write_file(dir, "victim_quarantine.adet", b);
  }

  // --- E301 (envelope pass): mass far outside any feasible envelope ------
  {
    blob b;
    b.u32(kMagic);
    b.u32(kVersion);
    b.u64(2);
    b.u32(kInstructions);
    b.u32(kBranches);
    b.u64(10);
    b.u64(4);
    b.f64(3.0);
    b.u8(1);
    b.u64(1);
    b.u8(1);
    b.u64(1);
    for (int e = 0; e < 2; ++e) {
      b.u8(1);
      b.f64(13.0);
      b.f64(10.0);
      b.f64(1.0);
      b.u64(32);
      b.u64(1);
      b.f64(1.0);
      b.f64(1.0e15);  // no model of any size executes 1e15 instructions
      b.f64(1.0e20);  // variance above the W234 floor (1e-12 * mean^2)
    }
    b.u8(0);
    // Lints clean (2xx): the defect is only visible against a model's
    // static envelope, which is the point of the 3xx pass.
    write_file(dir, "envelope_infeasible.adet", b);
  }

  return 0;
}
