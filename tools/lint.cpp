// advh_lint — command-line front end of the model-graph static verifier.
//
//   advh_lint <model-name|state-file> [--input CxHxW] [--classes N]
//             [--seed S] [--json]
//
// A model name builds a fresh factory model from src/nn/models; a state
// file (saved by nn::save_state, e.g. advh_models/S2_resnet_small.advh)
// additionally loads the trained parameters so the audit covers the
// on-disk values (NaN/Inf, zeroed weights). Exit status follows the
// advh_check contract: 0 clean, 1 warnings only, 2 verification errors,
// 64 on usage or I/O problems.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/verifier.hpp"
#include "common/cli.hpp"
#include "nn/models/models.hpp"
#include "nn/serialize.hpp"

using namespace advh;

namespace {

struct arch_defaults {
  shape input;
  std::size_t classes;
};

// Scenario-matched defaults (src/data/scenarios): the shapes each factory
// architecture is trained with.
arch_defaults defaults_for(nn::architecture a) {
  switch (a) {
    case nn::architecture::efficientnet_lite:
      return {shape{1, 28, 28}, 10};
    case nn::architecture::densenet_small:
      return {shape{3, 32, 32}, 43};
    case nn::architecture::case_study_cnn:
    case nn::architecture::resnet_small:
      return {shape{3, 32, 32}, 10};
  }
  return {shape{3, 32, 32}, 10};
}

/// Recovers the architecture from a state-file name such as
/// "advh_models/S2_resnet_small.advh" (the format stores tensors only;
/// the zoo rebuilds the graph from the name).
bool arch_from_filename(const std::string& path, nn::architecture& out) {
  for (nn::architecture a :
       {nn::architecture::case_study_cnn, nn::architecture::efficientnet_lite,
        nn::architecture::resnet_small, nn::architecture::densenet_small}) {
    if (path.find(nn::to_string(a)) != std::string::npos) {
      out = a;
      return true;
    }
  }
  return false;
}

bool parse_chw(const std::string& s, shape& out) {
  std::size_t c = 0, h = 0, w = 0;
  char x1 = 0, x2 = 0;
  if (std::sscanf(s.c_str(), "%zu%c%zu%c%zu", &c, &x1, &h, &x2, &w) != 5 ||
      x1 != 'x' || x2 != 'x' || c == 0 || h == 0 || w == 0) {
    return false;
  }
  out = shape{c, h, w};
  return true;
}

int usage(const std::string& help) {
  std::cerr << "usage: advh_lint <model-name|state-file> [flags]\n"
            << "  model names: case_study_cnn, efficientnet_lite, "
               "resnet_small, densenet_small\n"
            << help;
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  cli_parser cli("advh_lint", "static verifier for advh::nn model graphs");
  cli.add_flag("input", "", "input shape CxHxW (default: per-architecture)");
  cli.add_flag("classes", "0", "logit width (default: per-architecture)");
  cli.add_flag("seed", "1234", "weight-init seed for factory models");
  cli.add_flag("json", "false", "emit the report as JSON");

  if (argc < 2 || std::strncmp(argv[1], "--", 2) == 0) {
    if (argc >= 2 && std::strcmp(argv[1], "--help") == 0) {
      std::cerr << cli.help();
      return 0;
    }
    return usage(cli.help());
  }
  const std::string target = argv[1];

  // Hand the remaining flags to the parser (positional removed).
  std::vector<const char*> rest;
  rest.push_back(argv[0]);
  for (int i = 2; i < argc; ++i) rest.push_back(argv[i]);
  try {
    if (!cli.parse(static_cast<int>(rest.size()), rest.data())) return 0;
  } catch (const advh::error& e) {
    std::cerr << "advh_lint: " << e.what() << "\n";
    return 64;
  }

  try {
    const bool is_file = nn::is_state_file(target);
    nn::architecture arch;
    if (is_file) {
      if (!arch_from_filename(target, arch)) {
        std::cerr << "advh_lint: cannot infer architecture from file name '"
                  << target << "' (expected one of the zoo names in it)\n";
        return 64;
      }
    } else {
      try {
        arch = nn::architecture_from_string(target);
      } catch (const advh::error&) {
        std::cerr << "advh_lint: '" << target
                  << "' is neither a known model name nor a state file\n";
        return 64;
      }
    }

    arch_defaults d = defaults_for(arch);
    if (!cli.get("input").empty() && !parse_chw(cli.get("input"), d.input)) {
      std::cerr << "advh_lint: --input must look like 3x32x32\n";
      return 64;
    }
    if (cli.get_int("classes") > 0) {
      d.classes = static_cast<std::size_t>(cli.get_int("classes"));
    }

    auto m = nn::make_model(arch, d.input, d.classes,
                            static_cast<std::uint64_t>(cli.get_int("seed")));
    // Lint owns the verification verdict: load without the throw-on-error
    // gate, then report every diagnostic below.
    if (is_file) nn::load_state(*m, target, /*verify=*/false);

    const analysis::verification_report report = analysis::verify_model(*m);
    std::cout << (cli.get_bool("json") ? report.to_json() + "\n"
                                       : report.to_text());
    if (report.has_errors()) return 2;
    return report.diags.empty() ? 0 : 1;
  } catch (const advh::error& e) {
    std::cerr << "advh_lint: " << e.what() << "\n";
    return 64;
  }
}
