#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over the first-party
# sources, using the compile database of an existing build tree.
#
#   tools/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# Exits 0 when clang-tidy is clean or not installed (so CI images without
# LLVM skip the check instead of failing), non-zero on findings.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
shift || true
[ "${1:-}" = "--" ] && shift

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: $TIDY not found; skipping (install LLVM to enable)" >&2
  exit 0
fi

if [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD/compile_commands.json missing;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

# First-party translation units only (third-party code is not checked).
FILES=$(find "$ROOT/src" "$ROOT/tools" "$ROOT/tests" "$ROOT/bench" \
             "$ROOT/examples" -name '*.cpp' | sort)

STATUS=0
for f in $FILES; do
  "$TIDY" -p "$BUILD" --quiet "$@" "$f" || STATUS=1
done
exit $STATUS
